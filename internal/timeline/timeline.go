// Package timeline adds a time axis to a campaign: an ordered, validated
// sequence of phases that inject faults and degradations at scheduled
// virtual times — PoP outage with failover, backend latency brownout,
// cache-capacity shrink, network loss/throughput/RTT degradation, and
// flash-crowd arrival-rate multipliers. The paper characterizes exactly
// these transients (cache-miss storms, backend slowdowns, path
// congestion); a static scenario cannot reproduce them, a timeline can.
//
// Determinism contract. Every phase effect is keyed off *virtual* time,
// never wall clock, and resolves through one of two shard-safe channels:
//
//   - Per-session effects (path degradation, backend factor, failover)
//     latch at the session's arrival time inside workload.PlanSession — a
//     pure function of (seed, session ID, timeline) — so a session that
//     straddles a phase boundary keeps its arrival-time parameters for
//     its whole life, and no cross-shard coordination ever happens.
//   - Per-server effects (cache-capacity shrink) are engine events each
//     PoP shard schedules at the phase boundaries before any arrival,
//     entirely within the shard's own event system.
//
// Both channels draw no randomness of their own, so an empty timeline is
// byte-identical to no timeline and a populated one is byte-identical at
// every Scenario.Parallelism setting.
//
// Flash crowds reshape the arrival process itself: the timeline defines a
// piecewise-constant arrival-rate function (factor 1 outside phases) and
// WarpArrival maps each session's uniform nominal draw through the
// inverse cumulative rate, concentrating arrivals into high-rate phases
// without adding or reordering RNG draws.
//
// The same phase boundaries drive reporting: Windows cuts the arrival
// window into named before/during/after segments, and internal/telemetry
// maintains per-window accumulators so cmd/analyze -windows can show QoE
// and diagnosis shares degrading during a phase and recovering after it.
package timeline

import (
	"fmt"
	"regexp"
	"sort"
)

// Phase is one timed regime of the campaign: a half-open virtual-time
// window [StartMS, EndMS) and the parameter overrides in force inside it.
type Phase struct {
	// Name labels the phase in window names, counter keys, and reports.
	// It must match ^[a-z][a-z0-9-]*$ so derived telemetry keys stay
	// parseable (no '=', '_' or whitespace).
	Name string

	// StartMS / EndMS bound the phase in virtual milliseconds since
	// campaign start. Phases must be ordered and non-overlapping.
	StartMS float64
	EndMS   float64

	Effects Effects
}

// DurationMS returns the phase length.
func (p Phase) DurationMS() float64 { return p.EndMS - p.StartMS }

// Contains reports whether t falls inside the phase's half-open window.
func (p Phase) Contains(t float64) bool { return t >= p.StartMS && t < p.EndMS }

// Effects are the parameter overrides a phase applies. The zero value of
// every field means "unchanged"; factors therefore use 0 (not 1) as their
// neutral encoding and are substituted with 1 when read.
type Effects struct {
	// PoPDown lists PoP IDs that are out during the phase. Sessions whose
	// prefix maps to a down PoP and that arrive inside the phase are
	// served by FailoverPoP instead (modelled as anycast/DNS failover:
	// the outage redirects new arrivals; sessions already playing when
	// the PoP fails are not killed — they arrived earlier, on a healthy
	// PoP).
	PoPDown []int
	// FailoverPoP receives the redirected sessions (default 0). It must
	// not itself be listed in PoPDown.
	FailoverPoP int
	// FailoverExtraRTTms is added to a redirected session's base RTT,
	// standing in for the longer path to the farther PoP.
	FailoverExtraRTTms float64

	// BackendLatencyFactor multiplies D_BE for cache-miss fetches issued
	// by sessions that arrived inside the phase (origin brownout).
	// 0 means unchanged (factor 1).
	BackendLatencyFactor float64

	// CacheCapacityFactor scales every server cache's RAM and disk
	// capacity while the phase lasts (e.g. 0.25 = shrink to a quarter,
	// evicting down at the phase start; restored at the phase end).
	// 0 means unchanged. This is a per-server engine event, not a
	// per-session override.
	CacheCapacityFactor float64

	// Network-path degradation for sessions arriving inside the phase.
	ExtraLossProb    float64 // added to the per-segment random loss rate
	ThroughputFactor float64 // multiplies the bottleneck rate (0 = unchanged)
	ExtraRTTms       float64 // added to the base path RTT

	// ArrivalRateFactor multiplies the arrival density inside the phase
	// (flash crowd). 0 means unchanged (factor 1); values below 1 thin
	// arrivals, 0 is not a valid way to express "no arrivals" — use a
	// small positive factor.
	ArrivalRateFactor float64
}

// rateOr returns f if set (non-zero), else 1 — the neutral-0 convention
// every factor field uses.
func rateOr(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// ArrivalRate returns the phase's effective arrival-rate factor.
func (e Effects) ArrivalRate() float64 { return rateOr(e.ArrivalRateFactor) }

// BackendFactor returns the phase's effective backend-latency factor.
func (e Effects) BackendFactor() float64 { return rateOr(e.BackendLatencyFactor) }

// PoPIsDown reports whether the phase takes popID out.
func (e Effects) PoPIsDown(popID int) bool {
	for _, p := range e.PoPDown {
		if p == popID {
			return true
		}
	}
	return false
}

// Timeline is an ordered sequence of non-overlapping phases. The zero
// value is the empty timeline: no phases, no effects, byte-identical
// output to a scenario without one.
type Timeline struct {
	Phases []Phase
}

// Empty reports whether the timeline has no phases.
func (t Timeline) Empty() bool { return len(t.Phases) == 0 }

var phaseNameRE = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// Validate checks the intrinsic invariants every consumer relies on:
// key-safe unique phase names, non-negative ordered bounds, strictly
// positive durations, no overlap between phases, and effect parameters
// inside their legal ranges. PoP IDs are validated against the fleet by
// ValidatePoPs, which needs the fleet size.
func (t Timeline) Validate() error {
	seen := map[string]bool{}
	for i, p := range t.Phases {
		if !phaseNameRE.MatchString(p.Name) {
			return fmt.Errorf("timeline: phase %d name %q must match %s", i, p.Name, phaseNameRE)
		}
		if seen[p.Name] {
			return fmt.Errorf("timeline: duplicate phase name %q", p.Name)
		}
		seen[p.Name] = true
		if p.StartMS < 0 {
			return fmt.Errorf("timeline: phase %q starts at %g ms (must be >= 0)", p.Name, p.StartMS)
		}
		if p.EndMS <= p.StartMS {
			return fmt.Errorf("timeline: phase %q has non-positive duration [%g, %g)", p.Name, p.StartMS, p.EndMS)
		}
		if i > 0 && p.StartMS < t.Phases[i-1].EndMS {
			return fmt.Errorf("timeline: phase %q [%g, %g) overlaps %q [%g, %g) (phases must be ordered and disjoint)",
				p.Name, p.StartMS, p.EndMS,
				t.Phases[i-1].Name, t.Phases[i-1].StartMS, t.Phases[i-1].EndMS)
		}
		if err := p.Effects.validate(p.Name); err != nil {
			return err
		}
	}
	return nil
}

func (e Effects) validate(phase string) error {
	if e.BackendLatencyFactor < 0 {
		return fmt.Errorf("timeline: phase %q backend latency factor %g must be >= 0", phase, e.BackendLatencyFactor)
	}
	if e.CacheCapacityFactor < 0 {
		return fmt.Errorf("timeline: phase %q cache capacity factor %g must be >= 0", phase, e.CacheCapacityFactor)
	}
	if e.ExtraLossProb < 0 || e.ExtraLossProb > 1 {
		return fmt.Errorf("timeline: phase %q extra loss prob %g must be in [0, 1]", phase, e.ExtraLossProb)
	}
	if e.ThroughputFactor < 0 {
		return fmt.Errorf("timeline: phase %q throughput factor %g must be >= 0", phase, e.ThroughputFactor)
	}
	if e.ArrivalRateFactor < 0 {
		return fmt.Errorf("timeline: phase %q arrival rate factor %g must be >= 0", phase, e.ArrivalRateFactor)
	}
	if e.ExtraRTTms < 0 {
		return fmt.Errorf("timeline: phase %q extra RTT %g ms must be >= 0", phase, e.ExtraRTTms)
	}
	if e.FailoverExtraRTTms < 0 {
		return fmt.Errorf("timeline: phase %q failover extra RTT %g ms must be >= 0", phase, e.FailoverExtraRTTms)
	}
	if e.FailoverPoP < 0 {
		return fmt.Errorf("timeline: phase %q failover PoP %d must be >= 0", phase, e.FailoverPoP)
	}
	for _, p := range e.PoPDown {
		if p < 0 {
			return fmt.Errorf("timeline: phase %q PoP %d must be >= 0", phase, p)
		}
		if p == e.FailoverPoP {
			return fmt.Errorf("timeline: phase %q fails over to PoP %d, which it also takes down", phase, p)
		}
	}
	return nil
}

// ValidatePoPs checks that every PoP referenced by the timeline exists in
// a fleet of numPoPs PoPs. It is separate from Validate because the fleet
// size is scenario state the timeline itself does not carry.
func (t Timeline) ValidatePoPs(numPoPs int) error {
	for _, p := range t.Phases {
		for _, pop := range p.Effects.PoPDown {
			if pop >= numPoPs {
				return fmt.Errorf("timeline: phase %q takes down PoP %d but the fleet has %d PoPs", p.Name, pop, numPoPs)
			}
		}
		if len(p.Effects.PoPDown) > 0 && p.Effects.FailoverPoP >= numPoPs {
			return fmt.Errorf("timeline: phase %q fails over to PoP %d but the fleet has %d PoPs", p.Name, p.Effects.FailoverPoP, numPoPs)
		}
	}
	return nil
}

// PhaseAt returns the phase whose half-open window contains t, or nil
// when t falls between phases (or the timeline is empty).
func (t Timeline) PhaseAt(at float64) *Phase {
	// Binary search over the ordered, disjoint phases.
	i := sort.Search(len(t.Phases), func(i int) bool { return t.Phases[i].EndMS > at })
	if i < len(t.Phases) && t.Phases[i].Contains(at) {
		return &t.Phases[i]
	}
	return nil
}

// HasPoPOutage reports whether any phase takes a PoP down — the check
// partitioners use to keep the no-timeline fast path.
func (t Timeline) HasPoPOutage() bool {
	for _, p := range t.Phases {
		if len(p.Effects.PoPDown) > 0 {
			return true
		}
	}
	return false
}
