package timeline

import (
	"math"
	"strings"
	"testing"
)

func valid(phases ...Phase) Timeline { return Timeline{Phases: phases} }

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		tl   Timeline
		want string // substring of the error
	}{
		{"bad name charset", valid(Phase{Name: "Bad_Name", StartMS: 0, EndMS: 10}), "must match"},
		{"empty name", valid(Phase{Name: "", StartMS: 0, EndMS: 10}), "must match"},
		{"duplicate name", valid(
			Phase{Name: "a", StartMS: 0, EndMS: 10},
			Phase{Name: "a", StartMS: 20, EndMS: 30}), "duplicate"},
		{"negative start", valid(Phase{Name: "a", StartMS: -1, EndMS: 10}), ">= 0"},
		{"zero duration", valid(Phase{Name: "a", StartMS: 10, EndMS: 10}), "non-positive duration"},
		{"inverted bounds", valid(Phase{Name: "a", StartMS: 10, EndMS: 5}), "non-positive duration"},
		{"overlap", valid(
			Phase{Name: "a", StartMS: 0, EndMS: 20},
			Phase{Name: "b", StartMS: 10, EndMS: 30}), "overlaps"},
		{"out of order", valid(
			Phase{Name: "a", StartMS: 50, EndMS: 60},
			Phase{Name: "b", StartMS: 10, EndMS: 30}), "overlaps"},
		{"negative backend factor", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{BackendLatencyFactor: -1}}), "backend latency factor"},
		{"negative cache factor", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{CacheCapacityFactor: -0.5}}), "cache capacity factor"},
		{"loss prob over 1", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{ExtraLossProb: 1.5}}), "extra loss prob"},
		{"negative throughput factor", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{ThroughputFactor: -2}}), "throughput factor"},
		{"negative arrival factor", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{ArrivalRateFactor: -1}}), "arrival rate factor"},
		{"negative extra rtt", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{ExtraRTTms: -100}}), "extra RTT"},
		{"negative failover rtt", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{FailoverExtraRTTms: -1}}), "failover extra RTT"},
		{"failover into outage", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{PoPDown: []int{2}, FailoverPoP: 2}}), "also takes down"},
		{"negative pop", valid(Phase{Name: "a", StartMS: 0, EndMS: 10,
			Effects: Effects{PoPDown: []int{-1}}}), "must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tl.Validate()
			if err == nil {
				t.Fatalf("Validate() accepted %+v", tc.tl)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	tl := valid(
		Phase{Name: "brownout", StartMS: 0, EndMS: 60000,
			Effects: Effects{BackendLatencyFactor: 5}},
		Phase{Name: "outage", StartMS: 60000, EndMS: 120000,
			Effects: Effects{PoPDown: []int{2, 3}, FailoverPoP: 0, FailoverExtraRTTms: 40}},
		Phase{Name: "crowd", StartMS: 300000, EndMS: 360000,
			Effects: Effects{ArrivalRateFactor: 4}},
	)
	if err := tl.Validate(); err != nil {
		t.Fatalf("Validate() = %v for a legal timeline", err)
	}
	if err := tl.ValidatePoPs(6); err != nil {
		t.Fatalf("ValidatePoPs(6) = %v", err)
	}
	if err := tl.ValidatePoPs(3); err == nil {
		t.Fatal("ValidatePoPs(3) accepted PoP 3 outage in a 3-PoP fleet")
	}
	if err := valid(Phase{Name: "o", StartMS: 0, EndMS: 10,
		Effects: Effects{PoPDown: []int{1}, FailoverPoP: 9}}).ValidatePoPs(6); err == nil {
		t.Fatal("ValidatePoPs accepted out-of-range failover PoP")
	}
}

// TestPhaseAtBoundaries pins the half-open [start, end) semantics at
// every boundary of a two-phase timeline with a gap.
func TestPhaseAtBoundaries(t *testing.T) {
	tl := valid(
		Phase{Name: "first", StartMS: 100, EndMS: 200},
		Phase{Name: "second", StartMS: 300, EndMS: 400},
	)
	cases := []struct {
		at   float64
		want string // "" = no phase
	}{
		{0, ""},
		{99.999, ""},
		{100, "first"}, // start is inclusive
		{199.999, "first"},
		{200, ""}, // end is exclusive
		{250, ""}, // gap
		{300, "second"},
		{399.999, "second"},
		{400, ""},
		{1e12, ""},
	}
	for _, tc := range cases {
		ph := tl.PhaseAt(tc.at)
		got := ""
		if ph != nil {
			got = ph.Name
		}
		if got != tc.want {
			t.Errorf("PhaseAt(%g) = %q, want %q", tc.at, got, tc.want)
		}
	}
	if Empty := (Timeline{}).PhaseAt(5); Empty != nil {
		t.Errorf("empty timeline PhaseAt = %v, want nil", Empty)
	}
}

func TestWindowsSegmentation(t *testing.T) {
	tl := valid(
		Phase{Name: "outage", StartMS: 100, EndMS: 200},
		Phase{Name: "crowd", StartMS: 300, EndMS: 400},
	)
	ws := tl.Windows(1000)
	wantNames := []string{"w00-pre", "w01-outage", "w02-gap", "w03-crowd", "w04-post"}
	if len(ws) != len(wantNames) {
		t.Fatalf("Windows = %v, want %d segments", ws, len(wantNames))
	}
	for i, w := range ws {
		if w.Name != wantNames[i] {
			t.Errorf("window %d = %q, want %q", i, w.Name, wantNames[i])
		}
	}
	// Contiguous cover of [0, 1000).
	if ws[0].StartMS != 0 || ws[len(ws)-1].EndMS != 1000 {
		t.Errorf("windows do not span the campaign: %v", ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].StartMS != ws[i-1].EndMS {
			t.Errorf("gap between window %d and %d: %v", i-1, i, ws)
		}
	}

	// A phase starting at 0 produces no empty "pre" window; a phase
	// running past the campaign end is clamped and "post" is dropped.
	ws = valid(Phase{Name: "all", StartMS: 0, EndMS: 2000}).Windows(1000)
	if len(ws) != 1 || ws[0].Name != "w00-all" || ws[0].EndMS != 1000 {
		t.Errorf("clamped single-phase windows = %v", ws)
	}
	// A phase entirely past the arrival window contributes nothing.
	ws = valid(Phase{Name: "late", StartMS: 5000, EndMS: 6000}).Windows(1000)
	if len(ws) != 1 || ws[0].Name != "w00-post" {
		t.Errorf("out-of-window phase windows = %v", ws)
	}
	if ws := (Timeline{}).Windows(1000); ws != nil {
		t.Errorf("empty timeline windows = %v, want nil", ws)
	}
}

func TestWindowAt(t *testing.T) {
	ws := valid(Phase{Name: "p", StartMS: 100, EndMS: 200}).Windows(1000)
	for _, tc := range []struct {
		t    float64
		want int
	}{{0, 0}, {99.9, 0}, {100, 1}, {199.9, 1}, {200, 2}, {999.9, 2}, {1000, 2}, {1001, -1}, {-1, -1}} {
		if got := WindowAt(ws, tc.t); got != tc.want {
			t.Errorf("WindowAt(%g) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

// TestWarpIdentityWithoutRateFactors: phases that inject faults but do
// not touch the arrival rate must leave every arrival exactly where it
// was — the byte-identity of non-flash-crowd timelines depends on it.
func TestWarpIdentityWithoutRateFactors(t *testing.T) {
	tl := valid(
		Phase{Name: "outage", StartMS: 100, EndMS: 200,
			Effects: Effects{PoPDown: []int{1}, BackendLatencyFactor: 3}},
	)
	for _, u := range []float64{0, 50, 100, 150, 200, 555.25, 999.999} {
		if got := tl.WarpArrival(u, 1000); got != u {
			t.Errorf("WarpArrival(%g) = %g, want identity", u, got)
		}
	}
	if got := (Timeline{}).WarpArrival(123.5, 1000); got != 123.5 {
		t.Errorf("empty timeline warp = %g, want identity", got)
	}
}

// TestWarpConcentratesArrivals: a factor-m phase must receive m× the
// nominal mass, phase boundaries must map exactly onto mass boundaries,
// and the map must stay monotonic.
func TestWarpConcentratesArrivals(t *testing.T) {
	const w = 1000.0
	tl := valid(Phase{Name: "crowd", StartMS: 400, EndMS: 600,
		Effects: Effects{ArrivalRateFactor: 4}})
	// Rate mass: 400*1 + 200*4 + 400*1 = 1600. The phase holds 800/1600 =
	// 50% of arrivals in 20% of the window.
	in, n := 0, 100000
	prev := -1.0
	for i := 0; i < n; i++ {
		u := w * float64(i) / float64(n)
		at := tl.WarpArrival(u, w)
		if at < prev {
			t.Fatalf("warp not monotonic at u=%g: %g < %g", u, at, prev)
		}
		prev = at
		if at >= 400 && at < 600 {
			in++
		}
	}
	if share := float64(in) / float64(n); math.Abs(share-0.5) > 0.001 {
		t.Errorf("phase arrival share = %.4f, want 0.5", share)
	}
	// Exact boundary mapping: nominal mass fraction 400/1600 of the
	// window start lands exactly on the phase start.
	if got := tl.WarpArrival(w*400/1600, w); math.Abs(got-400) > 1e-9 {
		t.Errorf("mass boundary maps to %g, want 400", got)
	}
	if got := tl.WarpArrival(w*1200/1600, w); math.Abs(got-600) > 1e-9 {
		t.Errorf("mass boundary maps to %g, want 600", got)
	}
	// Endpoints stay inside the window.
	if got := tl.WarpArrival(0, w); got != 0 {
		t.Errorf("WarpArrival(0) = %g", got)
	}
	if got := tl.WarpArrival(999.999999, w); got >= w {
		t.Errorf("WarpArrival(~end) = %g, escaped the window", got)
	}
}

// TestWarpThinsArrivals: factors below 1 must push arrivals out of the
// phase (the inverse of a flash crowd: a partial drain).
func TestWarpThinsArrivals(t *testing.T) {
	const w = 1000.0
	tl := valid(Phase{Name: "drain", StartMS: 0, EndMS: 500,
		Effects: Effects{ArrivalRateFactor: 0.5}})
	// Mass: 500*0.5 + 500*1 = 750; the phase holds 250/750 = 1/3.
	in, n := 0, 30000
	for i := 0; i < n; i++ {
		if at := tl.WarpArrival(w*float64(i)/float64(n), w); at < 500 {
			in++
		}
	}
	if share := float64(in) / float64(n); math.Abs(share-1.0/3) > 0.005 {
		t.Errorf("drained phase share = %.4f, want 1/3", share)
	}
}

func TestEffectsHelpers(t *testing.T) {
	e := Effects{}
	if e.ArrivalRate() != 1 || e.BackendFactor() != 1 {
		t.Errorf("zero effects factors = %g/%g, want 1/1", e.ArrivalRate(), e.BackendFactor())
	}
	e = Effects{ArrivalRateFactor: 3, BackendLatencyFactor: 0.5, PoPDown: []int{1, 4}}
	if e.ArrivalRate() != 3 || e.BackendFactor() != 0.5 {
		t.Errorf("set factors = %g/%g", e.ArrivalRate(), e.BackendFactor())
	}
	if !e.PoPIsDown(4) || e.PoPIsDown(0) {
		t.Errorf("PoPIsDown wrong: %v", e.PoPDown)
	}
	if tl := valid(Phase{Name: "o", StartMS: 0, EndMS: 1, Effects: e}); !tl.HasPoPOutage() {
		t.Error("HasPoPOutage = false with PoPDown set")
	}
	if (Timeline{}).HasPoPOutage() {
		t.Error("empty timeline HasPoPOutage = true")
	}
}
