package analysis

import (
	"vidperf/internal/core"
	"vidperf/internal/stats"
)

// LossSplit reproduces Fig. 11: session length, quality and re-buffering
// distributions for sessions with and without packet loss.
type LossSplit struct {
	LenLoss, LenNoLoss         *stats.ECDF // #chunks (Fig. 11a)
	BitrateLoss, BitrateNoLoss *stats.ECDF // avg kbps (Fig. 11b)
	RebufLoss, RebufNoLoss     *stats.ECDF // rebuffer rate %, use CCDF view (Fig. 11c)
	NoLossShare                float64     // paper: ~40% of sessions loss-free
	SubTenPctShare             float64     // paper: >90% of sessions retx < 10%
}

// SplitByLoss partitions sessions on HadLoss and builds the Fig. 11
// distributions.
func SplitByLoss(d *core.Dataset) LossSplit {
	var lenL, lenN, brL, brN, rbL, rbN []float64
	noLoss, subTen := 0, 0
	for i := range d.Sessions {
		s := &d.Sessions[i]
		if s.RetxRate < 0.10 {
			subTen++
		}
		if s.HadLoss {
			lenL = append(lenL, float64(s.NumChunks))
			brL = append(brL, s.AvgBitrateKbps)
			rbL = append(rbL, s.RebufferRate*100)
		} else {
			noLoss++
			lenN = append(lenN, float64(s.NumChunks))
			brN = append(brN, s.AvgBitrateKbps)
			rbN = append(rbN, s.RebufferRate*100)
		}
	}
	out := LossSplit{
		LenLoss: stats.NewECDF(lenL), LenNoLoss: stats.NewECDF(lenN),
		BitrateLoss: stats.NewECDF(brL), BitrateNoLoss: stats.NewECDF(brN),
		RebufLoss: stats.NewECDF(rbL), RebufNoLoss: stats.NewECDF(rbN),
	}
	if n := len(d.Sessions); n > 0 {
		out.NoLossShare = float64(noLoss) / float64(n)
		out.SubTenPctShare = float64(subTen) / float64(n)
	}
	return out
}

// RebufVsRetx reproduces Fig. 12: mean session re-buffering rate (%) in
// bins of session retransmission rate (%).
func RebufVsRetx(d *core.Dataset, binPct, maxPct float64) []stats.BinStat {
	var xs, ys []float64
	for i := range d.Sessions {
		s := &d.Sessions[i]
		xs = append(xs, s.RetxRate*100)
		ys = append(ys, s.RebufferRate*100)
	}
	return stats.BinnedStats(xs, ys, 0, maxPct, binPct)
}

// RebufByChunkID reproduces Fig. 14: per chunk position X, the fraction of
// chunks with a re-buffering event, and the same conditioned on loss in
// that chunk.
type RebufByChunkID struct {
	PRebuf          []float64 // P(rebuffering at chunk = X), percent
	PRebufGivenLoss []float64 // P(rebuffering at chunk = X | loss at X), percent
}

// ComputeRebufByChunkID aggregates chunk positions 0..maxChunk.
func ComputeRebufByChunkID(d *core.Dataset, maxChunk int) RebufByChunkID {
	total := make([]int, maxChunk+1)
	rebuf := make([]int, maxChunk+1)
	lossTotal := make([]int, maxChunk+1)
	lossRebuf := make([]int, maxChunk+1)
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if c.ChunkID > maxChunk {
			continue
		}
		total[c.ChunkID]++
		hadRebuf := c.BufCount > 0
		if hadRebuf {
			rebuf[c.ChunkID]++
		}
		if c.SegsLost > 0 {
			lossTotal[c.ChunkID]++
			if hadRebuf {
				lossRebuf[c.ChunkID]++
			}
		}
	}
	out := RebufByChunkID{
		PRebuf:          make([]float64, maxChunk+1),
		PRebufGivenLoss: make([]float64, maxChunk+1),
	}
	for x := 0; x <= maxChunk; x++ {
		if total[x] > 0 {
			out.PRebuf[x] = float64(rebuf[x]) / float64(total[x]) * 100
		}
		if lossTotal[x] > 0 {
			out.PRebufGivenLoss[x] = float64(lossRebuf[x]) / float64(lossTotal[x]) * 100
		}
	}
	return out
}

// RetxByChunkID reproduces Fig. 15: average per-chunk retransmission rate
// (%) by chunk position.
func RetxByChunkID(d *core.Dataset, maxChunk int) []float64 {
	var keys []int
	var rates []float64
	for i := range d.Chunks {
		c := &d.Chunks[i]
		keys = append(keys, c.ChunkID)
		rates = append(rates, c.LossRate()*100)
	}
	return stats.GroupedMean(keys, rates, maxChunk)
}

// PerfScoreSplit reproduces Fig. 16: the latency-share, D_FB, and D_LB
// distributions for chunks with perfscore >= 1 vs < 1.
type PerfScoreSplit struct {
	GoodShare, BadShare *stats.ECDF // latency share D_FB/(D_FB+D_LB)
	GoodDFB, BadDFB     *stats.ECDF // ms
	GoodDLB, BadDLB     *stats.ECDF // ms
	BadChunkFrac        float64
}

// SplitPerfScores builds Fig. 16 from all chunks.
func SplitPerfScores(d *core.Dataset) PerfScoreSplit {
	var gs, bs, gf, bf, gl, bl []float64
	bad := 0
	for i := range d.Chunks {
		c := &d.Chunks[i]
		share := core.LatencyShare(*c)
		if c.PerfScore() >= 1 {
			gs = append(gs, share)
			gf = append(gf, c.DFBms)
			gl = append(gl, c.DLBms)
		} else {
			bad++
			bs = append(bs, share)
			bf = append(bf, c.DFBms)
			bl = append(bl, c.DLBms)
		}
	}
	out := PerfScoreSplit{
		GoodShare: stats.NewECDF(gs), BadShare: stats.NewECDF(bs),
		GoodDFB: stats.NewECDF(gf), BadDFB: stats.NewECDF(bf),
		GoodDLB: stats.NewECDF(gl), BadDLB: stats.NewECDF(bl),
	}
	if n := len(d.Chunks); n > 0 {
		out.BadChunkFrac = float64(bad) / float64(n)
	}
	return out
}
