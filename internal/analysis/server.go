// Package analysis implements every §4 analysis in the paper: the
// server-side characterization (Figs. 4–6, the load-performance paradox,
// miss persistence), the network characterization (Figs. 7–16, Table 4),
// the download-stack methods (Figs. 17–18, Table 5), and the rendering
// analyses (Figs. 19–22). Each function consumes the proxy-filtered
// core.Dataset and returns a plain result struct the figures package
// renders and the benches assert on.
package analysis

import (
	"math"
	"sort"

	"vidperf/internal/core"
	"vidperf/internal/stats"
)

// QoEVsFirstChunkMetric is the shared shape of Figs. 4 and 7: startup time
// binned by a first-chunk metric.
type QoEVsFirstChunkMetric struct {
	Bins []stats.BinStat // x in ms, y in seconds
}

// StartupVsServerLatency reproduces Fig. 4: per-session startup time as a
// function of the first chunk's server-side latency (D_CDN + D_BE), binned
// at binMS over [0, maxMS).
func StartupVsServerLatency(d *core.Dataset, binMS, maxMS float64) QoEVsFirstChunkMetric {
	xs, ys := firstChunkXY(d, func(c *core.ChunkRecord) float64 { return c.ServerLatencyMS() })
	return QoEVsFirstChunkMetric{Bins: stats.BinnedStats(xs, ys, 0, maxMS, binMS)}
}

// StartupVsSRTT reproduces Fig. 7: startup time vs the first chunk's SRTT.
func StartupVsSRTT(d *core.Dataset, binMS, maxMS float64) QoEVsFirstChunkMetric {
	xs, ys := firstChunkXY(d, func(c *core.ChunkRecord) float64 { return c.SRTTms })
	return QoEVsFirstChunkMetric{Bins: stats.BinnedStats(xs, ys, 0, maxMS, binMS)}
}

func firstChunkXY(d *core.Dataset, metric func(*core.ChunkRecord) float64) (xs, ys []float64) {
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if c.ChunkID != 0 {
			continue
		}
		s := d.Session(c.SessionID)
		if s == nil || math.IsNaN(s.StartupMS) {
			continue
		}
		xs = append(xs, metric(c))
		ys = append(ys, s.StartupMS/1000)
	}
	return xs, ys
}

// CDNLatencyBreakdown reproduces Fig. 5: CDFs of Dwait, Dopen, Dread over
// all chunks, plus total server latency split by cache hit/miss.
type CDNLatencyBreakdown struct {
	Dwait, Dopen, Dread  *stats.ECDF
	TotalHit, TotalMiss  *stats.ECDF
	MedianHitMS          float64
	MedianMissMS         float64
	RetryTimerChunkShare float64 // fraction of chunks delayed by the retry timer
}

// BreakdownCDNLatency computes Fig. 5 and its headline calibration numbers
// (median hit 2 ms vs miss 80 ms; ~35% of chunks hitting the retry timer).
func BreakdownCDNLatency(d *core.Dataset) CDNLatencyBreakdown {
	var wait, open, read, hit, miss []float64
	retries := 0
	for i := range d.Chunks {
		c := &d.Chunks[i]
		wait = append(wait, c.DwaitMS)
		open = append(open, c.DopenMS)
		read = append(read, c.DreadMS)
		if c.CacheHit {
			hit = append(hit, c.ServerLatencyMS())
		} else {
			miss = append(miss, c.ServerLatencyMS())
		}
		if c.RetryTimer {
			retries++
		}
	}
	out := CDNLatencyBreakdown{
		Dwait: stats.NewECDF(wait), Dopen: stats.NewECDF(open), Dread: stats.NewECDF(read),
		TotalHit: stats.NewECDF(hit), TotalMiss: stats.NewECDF(miss),
		MedianHitMS: stats.Median(hit), MedianMissMS: stats.Median(miss),
	}
	if n := len(d.Chunks); n > 0 {
		out.RetryTimerChunkShare = float64(retries) / float64(n)
	}
	return out
}

// PopularityPoint is one rank-threshold row of Fig. 6.
type PopularityPoint struct {
	RankMin           int // videos with rank >= RankMin
	Chunks            int
	MissPct           float64 // Fig. 6a
	MedianHitServerMS float64 // Fig. 6b (cache misses excluded)
}

// PerformanceVsPopularity reproduces Fig. 6: cache-miss percentage and
// median hit-side server delay as a function of video-rank threshold.
func PerformanceVsPopularity(d *core.Dataset, thresholds []int) []PopularityPoint {
	type agg struct {
		miss, total int
		hitLat      []float64
	}
	perRank := map[int]*agg{}
	maxRank := 0
	for i := range d.Chunks {
		c := &d.Chunks[i]
		s := d.Session(c.SessionID)
		if s == nil {
			continue
		}
		a := perRank[s.VideoRank]
		if a == nil {
			a = &agg{}
			perRank[s.VideoRank] = a
		}
		a.total++
		if c.CacheHit {
			a.hitLat = append(a.hitLat, c.ServerLatencyMS())
		} else {
			a.miss++
		}
		if s.VideoRank > maxRank {
			maxRank = s.VideoRank
		}
	}
	var out []PopularityPoint
	for _, th := range thresholds {
		var p PopularityPoint
		p.RankMin = th
		var lat []float64
		for rank, a := range perRank {
			if rank < th {
				continue
			}
			p.Chunks += a.total
			p.MissPct += float64(a.miss)
			lat = append(lat, a.hitLat...)
		}
		if p.Chunks > 0 {
			p.MissPct = p.MissPct / float64(p.Chunks) * 100
		}
		p.MedianHitServerMS = stats.Median(lat)
		out = append(out, p)
	}
	return out
}

// MissPersistence quantifies §4.1 finding 2: cache misses and slow reads
// cluster within sessions.
type MissPersistence struct {
	// MeanMissRatioGivenMiss is the mean per-session miss ratio among
	// sessions with at least one miss (paper: mean 60%, median 67%).
	MeanMissRatioGivenMiss   float64
	MedianMissRatioGivenMiss float64
	// MeanHighReadRatioGivenHigh mirrors the read-latency clustering
	// (chunks with Dread > 10 ms; paper: mean and median 60%).
	MeanHighReadRatioGivenHigh   float64
	MedianHighReadRatioGivenHigh float64
	SessionsWithMiss             int
}

// ComputeMissPersistence aggregates per-session clustering of misses and
// slow reads.
func ComputeMissPersistence(d *core.Dataset) MissPersistence {
	var missRatios, highRatios []float64
	for _, idxs := range d.ChunksBySession() {
		miss, high := 0, 0
		for _, ci := range idxs {
			c := &d.Chunks[ci]
			if !c.CacheHit {
				miss++
			}
			if c.DreadMS > 10 {
				high++
			}
		}
		n := float64(len(idxs))
		if miss > 0 {
			missRatios = append(missRatios, float64(miss)/n)
		}
		if high > 0 {
			highRatios = append(highRatios, float64(high)/n)
		}
	}
	return MissPersistence{
		MeanMissRatioGivenMiss:       stats.Mean(missRatios),
		MedianMissRatioGivenMiss:     stats.Median(missRatios),
		MeanHighReadRatioGivenHigh:   stats.Mean(highRatios),
		MedianHighReadRatioGivenHigh: stats.Median(highRatios),
		SessionsWithMiss:             len(missRatios),
	}
}

// ServerLoadPoint is one server's load/performance sample for the §4.1
// load-performance paradox.
type ServerLoadPoint struct {
	ServerID int
	Requests int64
	MeanDCDN float64
}

// LoadParadox reports the per-server (requests, mean D_CDN) relation; the
// cache-focused mapping makes busier servers (hot content) *faster*, so
// the rank correlation should be negative.
type LoadParadox struct {
	Points      []ServerLoadPoint
	Correlation float64 // Pearson correlation between load and latency
}

// ComputeLoadParadox aggregates per-server request counts and mean D_CDN
// from the chunk records.
func ComputeLoadParadox(d *core.Dataset) LoadParadox {
	type agg struct {
		n   int64
		sum float64
	}
	per := map[int]*agg{}
	for i := range d.Chunks {
		c := &d.Chunks[i]
		s := d.Session(c.SessionID)
		if s == nil {
			continue
		}
		a := per[s.ServerID]
		if a == nil {
			a = &agg{}
			per[s.ServerID] = a
		}
		a.n++
		a.sum += c.DCDNms()
	}
	var out LoadParadox
	var xs, ys []float64
	for id, a := range per {
		p := ServerLoadPoint{ServerID: id, Requests: a.n, MeanDCDN: a.sum / float64(a.n)}
		out.Points = append(out.Points, p)
		xs = append(xs, float64(a.n))
		ys = append(ys, p.MeanDCDN)
	}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].Requests > out.Points[j].Requests })
	out.Correlation = pearson(xs, ys)
	return out
}

func pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
