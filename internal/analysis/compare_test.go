package analysis

import (
	"math"
	"testing"

	"vidperf/internal/telemetry"
)

func compareSnap(scale float64, chunks, hits uint64) *telemetry.Snapshot {
	sk := telemetry.NewSketch(64)
	for i := 0; i < 1000; i++ {
		sk.Add(scale * float64(i))
	}
	return &telemetry.Snapshot{
		Schema:   telemetry.SnapshotSchema,
		SketchK:  64,
		Sketches: map[string]*telemetry.QuantileSketch{"lat_ms": sk, "only_a": telemetry.NewSketch(64)},
		Counters: map[string]uint64{
			telemetry.CounterChunks:    chunks,
			telemetry.CounterChunksHit: hits,
			"chunks_cache=ram":         hits, // dimensioned: must not appear in scalar diff
		},
	}
}

func TestCompareSnapshots(t *testing.T) {
	a := compareSnap(1, 1000, 900)
	b := compareSnap(2, 1200, 600)
	delete(b.Sketches, "only_a") // present on one side only: skipped
	cmp := CompareSnapshots(a, b)

	if len(cmp.Metrics) != 1 || cmp.Metrics[0].Name != "lat_ms" {
		t.Fatalf("metrics = %+v, want only the shared lat_ms", cmp.Metrics)
	}
	md := cmp.Metrics[0]
	if len(md.Quantiles) != len(CompareQuantiles) {
		t.Fatalf("quantile rows = %d, want %d", len(md.Quantiles), len(CompareQuantiles))
	}
	p50 := md.Quantiles[0]
	if p50.Q != 0.5 {
		t.Fatalf("first quantile = %g, want 0.5", p50.Q)
	}
	// b's samples are exactly 2x a's, so every quantile doubles (within
	// sketch error); RelDelta must sit near +1.
	if p50.RelDelta < 0.9 || p50.RelDelta > 1.1 {
		t.Errorf("p50 rel delta = %g, want ≈ +1.0 (a=%g b=%g)", p50.RelDelta, p50.A, p50.B)
	}

	for _, c := range cmp.Counters {
		if c.Name == "chunks_cache=ram" {
			t.Error("dimensioned counter leaked into scalar diff")
		}
		if c.Name == telemetry.CounterChunks {
			if c.Delta != 200 || math.Abs(c.RelDelta-0.2) > 1e-12 {
				t.Errorf("chunks delta = %+d (%g), want +200 (0.2)", c.Delta, c.RelDelta)
			}
		}
	}

	var hit *RateDelta
	for i := range cmp.Rates {
		if cmp.Rates[i].Name == "cache_hit_ratio" {
			hit = &cmp.Rates[i]
		}
	}
	if hit == nil {
		t.Fatal("cache_hit_ratio rate missing")
	}
	if math.Abs(hit.A-0.9) > 1e-12 || math.Abs(hit.B-0.5) > 1e-12 {
		t.Errorf("hit ratio = %g -> %g, want 0.9 -> 0.5", hit.A, hit.B)
	}

	// Empty snapshots must not panic and produce NaN-safe output.
	empty := &telemetry.Snapshot{Schema: telemetry.SnapshotSchema, SketchK: 64}
	c2 := CompareSnapshots(empty, empty)
	if len(c2.Metrics) != 0 || len(c2.Counters) != 0 {
		t.Errorf("empty comparison = %+v", c2)
	}
	for _, r := range c2.Rates {
		if !math.IsNaN(r.A) || !math.IsNaN(r.B) {
			t.Errorf("rate %s on empty snapshots = %g/%g, want NaN", r.Name, r.A, r.B)
		}
	}
}
