// windows.go extracts the timeline-window view from a telemetry
// snapshot: one row per window of the campaign's event timeline
// (internal/timeline) with exact session counts, the per-window QoE
// sketches, and — when the run also classified sessions — the per-window
// diagnosis-label mix. It is the analysis behind cmd/analyze -windows:
// the before/during/after contrast a fault-injection campaign exists to
// produce.
package analysis

import (
	"vidperf/internal/diagnose"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
)

// WindowLabelShare is one diagnosis label's share of a window's sessions.
type WindowLabelShare struct {
	Label    diagnose.Label
	Sessions uint64
	Share    float64 // Sessions / window sessions
}

// WindowRow is one timeline window's row of the -windows report.
type WindowRow struct {
	Window   timeline.Window
	Sessions uint64
	Share    float64 // Sessions / total windowed sessions

	// Per-window QoE sketches (startup in ms over started sessions,
	// re-buffering ratio, session average bitrate in kbps).
	Startup      *telemetry.QuantileSketch
	RebufferRate *telemetry.QuantileSketch
	Bitrate      *telemetry.QuantileSketch

	// Diag lists the window's diagnosis-label mix in diagnose.Labels()
	// order; empty when the run had diagnosis off.
	Diag []WindowLabelShare
}

// StreamingWindows is the snapshot-level windowed report plus the
// coverage-invariant inputs: windows partition the arrival window, so
// Assigned must equal Sessions (and Unassigned stay zero) whenever the
// snapshot was produced by a timeline run.
type StreamingWindows struct {
	Sessions   uint64 // total sessions in the snapshot
	Assigned   uint64 // sessions charged to some window
	Unassigned uint64 // sessions outside every window (should be 0)
	Diagnosed  bool   // rows carry diagnosis-label mixes
	Rows       []WindowRow
}

// Enabled reports whether the snapshot carries timeline windows at all.
func (w StreamingWindows) Enabled() bool { return len(w.Rows) > 0 }

// Covered reports the coverage invariant: every session charged to
// exactly one window.
func (w StreamingWindows) Covered() bool {
	return w.Enabled() && w.Unassigned == 0 && w.Assigned == w.Sessions
}

// StreamWindows extracts the windowed report from a snapshot. Rows come
// back in time order with exact counter-backed counts; windows no
// session arrived in keep zero rows so reports are shaped identically
// across cells of a campaign.
func StreamWindows(sn *telemetry.Snapshot) StreamingWindows {
	out := StreamingWindows{
		Sessions:   sn.Counter(telemetry.CounterSessions),
		Unassigned: sn.Counter(telemetry.CounterSessionsUnwindowed),
	}
	for _, w := range sn.Windows {
		row := WindowRow{
			Window:       w,
			Sessions:     sn.Counter(telemetry.WindowSessionsKey(w.Name)),
			Startup:      sn.Sketch(telemetry.WindowSketchKey(telemetry.MetricStartupMS, w.Name)),
			RebufferRate: sn.Sketch(telemetry.WindowSketchKey(telemetry.MetricRebufferRate, w.Name)),
			Bitrate:      sn.Sketch(telemetry.WindowSketchKey(telemetry.MetricAvgBitrateKbps, w.Name)),
		}
		for _, l := range diagnose.Labels() {
			n := sn.Counter(telemetry.WindowDiagSessionsKey(w.Name, string(l)))
			ls := WindowLabelShare{Label: l, Sessions: n}
			if row.Sessions > 0 {
				ls.Share = float64(n) / float64(row.Sessions)
			}
			if n > 0 {
				out.Diagnosed = true
			}
			row.Diag = append(row.Diag, ls)
		}
		out.Assigned += row.Sessions
		out.Rows = append(out.Rows, row)
	}
	for i := range out.Rows {
		if out.Assigned > 0 {
			out.Rows[i].Share = float64(out.Rows[i].Sessions) / float64(out.Assigned)
		}
	}
	return out
}
