package analysis

import (
	"math"
	"testing"

	"vidperf/internal/diagnose"
	"vidperf/internal/live"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// liveSnapshot simulates a small switch-heavy live campaign with
// diagnosis on and returns its telemetry snapshot.
func liveSnapshot(t *testing.T) *telemetry.Snapshot {
	t.Helper()
	res, err := session.Execute(workload.Scenario{
		Seed:        99,
		NumSessions: 800,
		NumPrefixes: 200,
		Live:        live.Config{Channels: 6, SwitchPerMin: 2},
	}, session.Options{Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Snapshot
}

// TestStreamLiveView checks the sketch-backed live report: the view is
// recognized as live, the join/lag sketches carry every session, the
// per-channel counts partition the population, and switches registered.
func TestStreamLiveView(t *testing.T) {
	sn := liveSnapshot(t)
	lv := StreamLive(sn)
	if !lv.Enabled() {
		t.Fatal("live snapshot not recognized as live")
	}
	if lv.Sessions != 800 {
		t.Fatalf("sessions = %d", lv.Sessions)
	}
	if n := lv.JoinTime.N(); n != 800 {
		t.Errorf("join-time sketch holds %d sessions", n)
	}
	if n := lv.EdgeLag.N(); n != 800 {
		t.Errorf("edge-lag sketch holds %d sessions", n)
	}
	if p50 := lv.JoinTime.Quantile(0.5); p50 <= 0 || math.IsNaN(p50) {
		t.Errorf("join-time p50 = %v", p50)
	}
	if lag := lv.EdgeLag.Quantile(0.9); lag < 0 || math.IsNaN(lag) {
		t.Errorf("edge-lag p90 = %v", lag)
	}
	if lv.Switches == 0 {
		t.Error("switch-heavy campaign recorded zero switches")
	}
	if len(lv.Channels) != 6 {
		t.Fatalf("channel rows = %d, want 6", len(lv.Channels))
	}
	var total uint64
	for i, c := range lv.Channels {
		if i > 0 && lv.Channels[i-1].Value >= c.Value {
			t.Errorf("channel rows out of order at %d: %q >= %q",
				i, lv.Channels[i-1].Value, c.Value)
		}
		total += c.N
	}
	if total != lv.Sessions {
		t.Errorf("channel counts sum to %d, want %d", total, lv.Sessions)
	}

	// A VoD snapshot must not be mistaken for a live one.
	res, err := session.Execute(workload.Scenario{
		Seed: 99, NumSessions: 50, NumPrefixes: 20,
	}, session.Options{Telemetry: true, SketchK: 64})
	if err != nil {
		t.Fatal(err)
	}
	if StreamLive(res.Snapshot).Enabled() {
		t.Fatal("VoD snapshot recognized as live")
	}
}

// TestDegradedShareExcludesLiveEdge pins the degraded-share accounting:
// healthy, abr-limited, and live-edge-limited sessions do not count
// against the delivery path, and the rows cover every session.
func TestDegradedShareExcludesLiveEdge(t *testing.T) {
	dg := StreamDiagnosis(liveSnapshot(t))
	if !dg.Enabled() {
		t.Fatal("diagnosis state missing from diagnosed campaign")
	}
	if dg.Labelled != dg.Sessions {
		t.Fatalf("labelled %d of %d sessions", dg.Labelled, dg.Sessions)
	}
	var ok uint64
	for _, r := range dg.Rows {
		switch r.Label {
		case diagnose.Healthy, diagnose.ABRLimited, diagnose.LiveEdgeLimited:
			ok += r.Sessions
		}
	}
	want := float64(dg.Labelled-ok) / float64(dg.Labelled)
	if got := dg.DegradedShare(); got != want {
		t.Errorf("DegradedShare = %v, want %v", got, want)
	}
	if got := dg.DegradedShare(); got < 0 || got > 1 {
		t.Errorf("DegradedShare = %v outside [0, 1]", got)
	}
	if (StreamingDiagnosis{}).DegradedShare() != 0 {
		t.Error("empty diagnosis has nonzero degraded share")
	}
}
