// proxy.go extracts the proxied-population view from a telemetry
// snapshot: the CV(SRTT) and startup distributions split by proxied vs
// direct sessions (internal/proxypop), the per-egress-cohort session
// mix, and the §3 detector-signal counters. Like the live view, it is
// entirely sketch- and counter-backed, so it survives one-pass
// aggregation at any campaign size.
package analysis

import (
	"vidperf/internal/telemetry"
)

// StreamingProxy is the proxied-population report of one snapshot.
type StreamingProxy struct {
	// CVProxied / CVClear are the per-session CV(SRTT) distributions of
	// proxied and direct sessions — the Fig. 9/Table 4 comparison.
	CVProxied *telemetry.QuantileSketch
	CVClear   *telemetry.QuantileSketch
	// StartupProxied / StartupClear split the startup distribution the
	// same way.
	StartupProxied *telemetry.QuantileSketch
	StartupClear   *telemetry.QuantileSketch

	Sessions   uint64               // total sessions in the snapshot
	Proxied    uint64               // sessions behind a shared egress
	IPMismatch uint64               // sessions with CDN-vs-beacon IP disagreement
	Cohorts    []telemetry.DimCount // sessions per egress cohort, sorted by cohort

	enabled bool
}

// Enabled reports whether the snapshot carries proxy-mode state at all
// (the sketches are created eagerly in proxy mode, so even an empty
// proxied campaign is recognized).
func (p StreamingProxy) Enabled() bool { return p.enabled }

// ProxiedShare is the ground-truth proxied fraction of the campaign.
func (p StreamingProxy) ProxiedShare() float64 {
	if p.Sessions == 0 {
		return 0
	}
	return float64(p.Proxied) / float64(p.Sessions)
}

// StreamProxy extracts the proxied-population view from a snapshot.
func StreamProxy(sn *telemetry.Snapshot) StreamingProxy {
	_, ok := sn.Sketches[telemetry.MetricSRTTCVProxied]
	return StreamingProxy{
		CVProxied:      sn.Sketch(telemetry.MetricSRTTCVProxied),
		CVClear:        sn.Sketch(telemetry.MetricSRTTCVClear),
		StartupProxied: sn.Sketch(telemetry.MetricStartupProxied),
		StartupClear:   sn.Sketch(telemetry.MetricStartupClear),
		Sessions:       sn.Counter(telemetry.CounterSessions),
		Proxied:        sn.Counter(telemetry.CounterSessionsProxied),
		IPMismatch:     sn.Counter(telemetry.CounterSessionsIPMismatch),
		Cohorts:        telemetry.CountersByDim(sn.Counters, telemetry.CounterSessions, telemetry.ProxyEgressDim),
		enabled:        ok,
	}
}
