// diagnosis.go extracts the per-session root-cause view from a telemetry
// snapshot: the share of sessions charged to each layer label
// (internal/diagnose) and the per-label QoE sketches. It is the analysis
// behind cmd/analyze -diagnose and mirrors the paper's §5–§6 structure —
// distributions per problem class instead of one campaign-wide blur.
package analysis

import (
	"vidperf/internal/diagnose"
	"vidperf/internal/telemetry"
)

// LabelShare is one diagnosis label's row of the cause-share table.
type LabelShare struct {
	Label    diagnose.Label
	Sessions uint64
	Share    float64 // Sessions / total labelled sessions

	// Per-label QoE sketches (startup in ms over started sessions,
	// re-buffering ratio, session average bitrate in kbps).
	Startup      *telemetry.QuantileSketch
	RebufferRate *telemetry.QuantileSketch
	Bitrate      *telemetry.QuantileSketch
}

// StreamingDiagnosis is the snapshot-level diagnosis report: every label
// in canonical order plus the coverage invariant inputs (labelled counts
// are exact counters, so Labelled == Sessions whenever the snapshot was
// produced with diagnosis enabled).
type StreamingDiagnosis struct {
	Sessions uint64 // total sessions in the snapshot
	Labelled uint64 // sessions carrying a diagnosis label
	Rows     []LabelShare
}

// Enabled reports whether the snapshot carries any diagnosis state at
// all (a snapshot from a run without -diagnose has none).
func (d StreamingDiagnosis) Enabled() bool { return d.Labelled > 0 }

// DegradedShare returns the fraction of labelled sessions whose label is
// neither healthy, abr-limited, nor live-edge-limited — the sessions
// some delivery layer actually hurt. Live-edge-limited sessions stalled
// on the publish clock, which is the medium working as designed, so they
// do not count against the delivery path.
func (d StreamingDiagnosis) DegradedShare() float64 {
	if d.Labelled == 0 {
		return 0
	}
	var ok uint64
	for _, r := range d.Rows {
		switch r.Label {
		case diagnose.Healthy, diagnose.ABRLimited, diagnose.LiveEdgeLimited:
			ok += r.Sessions
		}
	}
	return float64(d.Labelled-ok) / float64(d.Labelled)
}

// StreamDiagnosis extracts the cause-share table from a snapshot. Rows
// come back in diagnose.Labels() order with exact counter-backed counts;
// labels no session received keep zero rows so reports are shaped
// identically across cells.
func StreamDiagnosis(sn *telemetry.Snapshot) StreamingDiagnosis {
	out := StreamingDiagnosis{Sessions: sn.Counter(telemetry.CounterSessions)}
	for _, l := range diagnose.Labels() {
		row := LabelShare{
			Label:        l,
			Sessions:     sn.Counter(telemetry.DiagSessionsKey(l)),
			Startup:      sn.Sketch(telemetry.DiagSketchKey(telemetry.MetricStartupMS, l)),
			RebufferRate: sn.Sketch(telemetry.DiagSketchKey(telemetry.MetricRebufferRate, l)),
			Bitrate:      sn.Sketch(telemetry.DiagSketchKey(telemetry.MetricAvgBitrateKbps, l)),
		}
		out.Labelled += row.Sessions
		out.Rows = append(out.Rows, row)
	}
	for i := range out.Rows {
		if out.Labelled > 0 {
			out.Rows[i].Share = float64(out.Rows[i].Sessions) / float64(out.Labelled)
		}
	}
	return out
}
