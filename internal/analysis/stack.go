package analysis

import (
	"sort"

	"vidperf/internal/core"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// StackOutlierReport summarizes the Eq. 4 screening across the dataset
// (§4.3 finding 1: 0.32% of chunks, 3.1% of sessions).
type StackOutlierReport struct {
	OutlierChunks   int
	TotalChunks     int
	OutlierSessions int
	TotalSessions   int
	ChunkShare      float64
	SessionShare    float64

	// Validation against model ground truth (only meaningful for
	// simulated traces): how many flagged chunks are true transients and
	// how many true transients were found.
	TruePositives int
	TruthTotal    int
}

// DetectStackOutliersDataset runs the per-session Eq. 4 screen over every
// session.
func DetectStackOutliersDataset(d *core.Dataset) StackOutlierReport {
	rep := StackOutlierReport{TotalChunks: len(d.Chunks), TotalSessions: len(d.Sessions)}
	for _, idxs := range d.ChunksBySession() {
		chunks := chunkSlice(d, idxs)
		res := core.DetectStackOutliers(chunks)
		if len(res.Outliers) > 0 {
			rep.OutlierSessions++
			rep.OutlierChunks += len(res.Outliers)
			for _, i := range res.Outliers {
				if chunks[i].TruthTransient {
					rep.TruePositives++
				}
			}
		}
	}
	for i := range d.Chunks {
		if d.Chunks[i].TruthTransient {
			rep.TruthTotal++
		}
	}
	if rep.TotalChunks > 0 {
		rep.ChunkShare = float64(rep.OutlierChunks) / float64(rep.TotalChunks)
	}
	if rep.TotalSessions > 0 {
		rep.SessionShare = float64(rep.OutlierSessions) / float64(rep.TotalSessions)
	}
	return rep
}

// PlatformDDS is one row of Table 5: mean estimated download-stack latency
// for an (OS, browser) pair, over chunks with a non-zero Eq. 5 estimate.
type PlatformDDS struct {
	Browser string
	OS      string
	MeanDDS float64
	Chunks  int
}

// PersistentStackReport is Table 5 plus the §4.3-2 aggregates.
type PersistentStackReport struct {
	Top []PlatformDDS
	// NonZeroShare is the fraction of chunks with a non-zero Eq. 5
	// estimate (paper: 17.6%).
	NonZeroShare float64
	// DominantShare is, among chunks with non-zero D_DS, the fraction
	// where the stack is the largest D_FB component (paper: 84%).
	DominantShare float64
}

// ComputePersistentStack estimates D_DS per chunk via Eq. 5, aggregates by
// platform (>= minChunks chunks), and returns the Table 5 ranking.
func ComputePersistentStack(d *core.Dataset, minChunks, topN int) PersistentStackReport {
	if minChunks == 0 {
		minChunks = 200
	}
	type agg struct {
		sum float64
		n   int
	}
	per := map[[2]string]*agg{}
	nonZero, dominant := 0, 0
	for i := range d.Chunks {
		c := &d.Chunks[i]
		est := core.EstimateDDSms(*c)
		if est <= 0 {
			continue
		}
		nonZero++
		// Stack dominance: the D_DS estimate exceeds both the
		// (conservative) network allowance and the server latency.
		if est > tcpmodel.RTOPaperms(c.SRTTms, c.SRTTVarMS) && est > c.ServerLatencyMS() {
			dominant++
		}
		s := d.Session(c.SessionID)
		if s == nil {
			continue
		}
		k := [2]string{s.Browser, s.OS}
		a := per[k]
		if a == nil {
			a = &agg{}
			per[k] = a
		}
		a.sum += est
		a.n++
	}
	var rows []PlatformDDS
	for k, a := range per {
		if a.n < minChunks {
			continue
		}
		rows = append(rows, PlatformDDS{
			Browser: k[0], OS: k[1], MeanDDS: a.sum / float64(a.n), Chunks: a.n,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].MeanDDS > rows[j].MeanDDS })
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	out := PersistentStackReport{Top: rows}
	if len(d.Chunks) > 0 {
		out.NonZeroShare = float64(nonZero) / float64(len(d.Chunks))
	}
	if nonZero > 0 {
		out.DominantShare = float64(dominant) / float64(nonZero)
	}
	return out
}

// FirstChunkDFB reproduces Fig. 18: the D_FB distributions of first vs
// later chunks over a performance-equivalent set (no loss, grown window,
// no queueing, near-constant SRTT band, fast cache hits), isolating the
// first chunk's extra download-stack latency.
type FirstChunkDFB struct {
	First, Other   *stats.ECDF
	MedianGapMS    float64 // median(first) - median(other); paper ~300 ms
	FirstN, OtherN int
	SRTTBandMS     [2]float64
}

// EquivalentSetConfig selects Fig. 18's performance-equivalent chunks.
type EquivalentSetConfig struct {
	SRTTMinMS, SRTTMaxMS float64 // paper uses [60, 65)
	MaxDCDNms            float64 // paper: < 5 ms, cache hit
	MinCWND              int     // paper: > IW (10)
}

// ComputeFirstChunkDFB builds Fig. 18.
func ComputeFirstChunkDFB(d *core.Dataset, cfg EquivalentSetConfig) FirstChunkDFB {
	if cfg.SRTTMaxMS == 0 {
		cfg.SRTTMinMS, cfg.SRTTMaxMS = 60, 65
	}
	if cfg.MaxDCDNms == 0 {
		cfg.MaxDCDNms = 5
	}
	if cfg.MinCWND == 0 {
		cfg.MinCWND = 10
	}
	var first, other []float64
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if c.SegsLost > 0 ||
			c.SRTTms < cfg.SRTTMinMS || c.SRTTms >= cfg.SRTTMaxMS ||
			!c.CacheHit || c.DCDNms() >= cfg.MaxDCDNms {
			continue
		}
		if c.ChunkID == 0 {
			first = append(first, c.DFBms)
		} else if c.CWND > cfg.MinCWND {
			other = append(other, c.DFBms)
		}
	}
	out := FirstChunkDFB{
		First: stats.NewECDF(first), Other: stats.NewECDF(other),
		FirstN: len(first), OtherN: len(other),
		SRTTBandMS: [2]float64{cfg.SRTTMinMS, cfg.SRTTMaxMS},
	}
	out.MedianGapMS = stats.Median(first) - stats.Median(other)
	return out
}

// DDSVsRebuffering reports the §4.3 QoE link: mean estimated D_DS rises
// with session re-buffering severity (paper: <100 ms for clean sessions,
// >500 ms beyond 10% re-buffering).
type DDSVsRebuffering struct {
	MeanDDSNoRebuf float64
	MeanDDSUnder10 float64
	MeanDDSOver10  float64
}

// ComputeDDSVsRebuffering groups sessions into no-rebuffering, <=10%, and
// >10% re-buffering and averages the Eq. 5 estimates of their chunks.
func ComputeDDSVsRebuffering(d *core.Dataset) DDSVsRebuffering {
	var none, under, over stats.Summary
	for _, idxs := range d.ChunksBySession() {
		if len(idxs) == 0 {
			continue
		}
		s := d.Session(d.Chunks[idxs[0]].SessionID)
		if s == nil {
			continue
		}
		var target *stats.Summary
		switch {
		case s.RebufCount == 0:
			target = &none
		case s.RebufferRate <= 0.10:
			target = &under
		default:
			target = &over
		}
		for _, ci := range idxs {
			target.Add(core.EstimateDDSms(d.Chunks[ci]))
		}
	}
	return DDSVsRebuffering{
		MeanDDSNoRebuf: none.Mean(),
		MeanDDSUnder10: under.Mean(),
		MeanDDSOver10:  over.Mean(),
	}
}
