package analysis

import (
	"math"
	"sort"

	"vidperf/internal/core"
	"vidperf/internal/stats"
)

// LatencyDistributions reproduces Fig. 8: per-session baseline latency
// (srtt_min) and latency variation (σ_srtt) CDFs.
type LatencyDistributions struct {
	SRTTMin *stats.ECDF
	SRTTStd *stats.ECDF
}

// ComputeLatencyDistributions builds Fig. 8 from the session summaries.
func ComputeLatencyDistributions(d *core.Dataset) LatencyDistributions {
	var mins, stds []float64
	for i := range d.Sessions {
		s := &d.Sessions[i]
		if s.SRTTMinMS > 0 {
			mins = append(mins, s.SRTTMinMS)
		}
		stds = append(stds, s.SRTTStdMS)
	}
	return LatencyDistributions{SRTTMin: stats.NewECDF(mins), SRTTStd: stats.NewECDF(stds)}
}

// TailPrefixReport reproduces Fig. 9 and its surrounding analysis: /24
// prefixes whose baseline latency exceeds tailMS, their US/non-US split,
// the distance CDF for the US ones, and the organization mix of close-by
// US tail prefixes.
type TailPrefixReport struct {
	TailPrefixes           int
	NonUSShare             float64
	USDistanceCDF          *stats.ECDF // km, Fig. 9
	CloseUSCount           int         // US tail prefixes within CloseKM of the PoP
	CloseUSEnterpriseShare float64
	CloseKM                float64
}

// ComputeTailPrefixes aggregates sessions into prefixes (overcoming
// last-mile noise, as §4.2 argues), takes the minimum per-chunk baseline
// RTT per prefix, and characterizes the prefixes above tailMS.
func ComputeTailPrefixes(d *core.Dataset, tailMS, closeKM float64) TailPrefixReport {
	type pref struct {
		min        float64
		us         bool
		dist       float64
		enterprise bool
		sessions   int
	}
	byPrefix := map[int]*pref{}
	bySession := d.ChunksBySession()
	for i := range d.Sessions {
		s := &d.Sessions[i]
		cs := core.ComputeSessionChunkStats(chunkSlice(d, bySession[s.SessionID]))
		p := byPrefix[s.PrefixID]
		if p == nil {
			p = &pref{min: math.Inf(1), us: s.US, dist: s.DistanceKM,
				enterprise: s.OrgType == "enterprise"}
			byPrefix[s.PrefixID] = p
		}
		p.sessions++
		if cs.BaselineRTTms > 0 && cs.BaselineRTTms < p.min {
			p.min = cs.BaselineRTTms
		}
	}
	out := TailPrefixReport{CloseKM: closeKM}
	var usDist []float64
	nonUS, closeEnterprise := 0, 0
	for _, p := range byPrefix {
		// The paper aggregates to prefixes precisely because one session's
		// samples can be inflated end to end; demand at least two sessions
		// so a single congested visit cannot fake a persistent problem.
		if p.sessions < 2 {
			continue
		}
		if math.IsInf(p.min, 1) || p.min <= tailMS {
			continue
		}
		out.TailPrefixes++
		if !p.us {
			nonUS++
			continue
		}
		usDist = append(usDist, p.dist)
		if p.dist <= closeKM {
			out.CloseUSCount++
			if p.enterprise {
				closeEnterprise++
			}
		}
	}
	if out.TailPrefixes > 0 {
		out.NonUSShare = float64(nonUS) / float64(out.TailPrefixes)
	}
	if out.CloseUSCount > 0 {
		out.CloseUSEnterpriseShare = float64(closeEnterprise) / float64(out.CloseUSCount)
	}
	out.USDistanceCDF = stats.NewECDF(usDist)
	return out
}

func chunkSlice(d *core.Dataset, idxs []int) []core.ChunkRecord {
	out := make([]core.ChunkRecord, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, d.Chunks[i])
	}
	return out
}

// PathVariationReport reproduces Fig. 10: the CDF of CV(srtt) across
// (prefix, PoP) paths, using each session's mean SRTT as one sample.
type PathVariationReport struct {
	CVs         *stats.ECDF
	HighCVShare float64 // fraction of paths with CV > 1 (paper: ~40%)
	Paths       int
}

// ComputePathVariation groups sessions by (prefix, PoP) and computes the
// coefficient of variation of their mean SRTTs.
func ComputePathVariation(d *core.Dataset, minSessions int) PathVariationReport {
	if minSessions < 2 {
		minSessions = 2
	}
	type key struct{ prefix, pop int }
	groups := map[key][]float64{}
	for i := range d.Sessions {
		s := &d.Sessions[i]
		if s.SRTTMeanMS > 0 {
			k := key{s.PrefixID, s.PoP}
			groups[k] = append(groups[k], s.SRTTMeanMS)
		}
	}
	var cvs []float64
	high := 0
	for _, xs := range groups {
		if len(xs) < minSessions {
			continue
		}
		cv := stats.CV(xs)
		if math.IsNaN(cv) {
			continue
		}
		cvs = append(cvs, cv)
		if cv > 1 {
			high++
		}
	}
	out := PathVariationReport{CVs: stats.NewECDF(cvs), Paths: len(cvs)}
	if len(cvs) > 0 {
		out.HighCVShare = float64(high) / float64(len(cvs))
	}
	return out
}

// OrgVariability is one row of Table 4.
type OrgVariability struct {
	OrgName    string
	HighCV     int // sessions with CV(SRTT) > 1
	Sessions   int
	Percentage float64
	Enterprise bool
}

// OrgVariabilityReport is Table 4 plus the residential baseline the paper
// quotes (~1% of sessions with CV > 1).
type OrgVariabilityReport struct {
	Top                  []OrgVariability
	ResidentialHighCVPct float64
}

// ComputeOrgVariability ranks organizations (>= minSessions sessions) by
// the share of sessions with within-session CV(SRTT) > 1.
func ComputeOrgVariability(d *core.Dataset, minSessions, topN int) OrgVariabilityReport {
	if minSessions == 0 {
		minSessions = 50
	}
	type agg struct {
		high, total int
		enterprise  bool
	}
	per := map[string]*agg{}
	resHigh, resTotal := 0, 0
	for i := range d.Sessions {
		s := &d.Sessions[i]
		a := per[s.OrgName]
		if a == nil {
			a = &agg{enterprise: s.OrgType == "enterprise"}
			per[s.OrgName] = a
		}
		a.total++
		high := s.SRTTCV > 1
		if high {
			a.high++
		}
		if s.OrgType == "residential" {
			resTotal++
			if high {
				resHigh++
			}
		}
	}
	var rows []OrgVariability
	for name, a := range per {
		if a.total < minSessions {
			continue
		}
		rows = append(rows, OrgVariability{
			OrgName: name, HighCV: a.high, Sessions: a.total,
			Percentage: float64(a.high) / float64(a.total) * 100,
			Enterprise: a.enterprise,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Percentage != rows[j].Percentage {
			return rows[i].Percentage > rows[j].Percentage
		}
		return rows[i].OrgName < rows[j].OrgName
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	out := OrgVariabilityReport{Top: rows}
	if resTotal > 0 {
		out.ResidentialHighCVPct = float64(resHigh) / float64(resTotal) * 100
	}
	return out
}
