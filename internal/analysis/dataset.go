package analysis

import (
	"sort"

	"vidperf/internal/core"
	"vidperf/internal/stats"
)

// DatasetStats reproduces the §3 dataset characterization used to
// calibrate the workload (browser/OS mix, popularity skew, video length
// spread) plus the headline cache numbers quoted through §4.1.
type DatasetStats struct {
	Sessions int
	Chunks   int

	BrowserShare map[string]float64 // fraction of sessions
	OSShare      map[string]float64

	// Top10VideoShare is the play share of the top 10% most popular
	// videos (paper: ~66%).
	Top10VideoShare float64

	VideoLenCCDF *stats.ECDF   // Fig. 3a support
	RankPlays    []stats.Point // Fig. 3b: normalized rank vs normalized frequency

	OverallMissRate float64 // paper: ~2% average
	USClientShare   float64 // paper: >93% North America
}

// ComputeDatasetStats aggregates the §3 statistics from a dataset.
func ComputeDatasetStats(d *core.Dataset) DatasetStats {
	out := DatasetStats{
		Sessions:     len(d.Sessions),
		Chunks:       len(d.Chunks),
		BrowserShare: map[string]float64{},
		OSShare:      map[string]float64{},
	}
	if out.Sessions == 0 {
		return out
	}
	playsByVideo := map[int]int{}
	var lens []float64
	us := 0
	for i := range d.Sessions {
		s := &d.Sessions[i]
		out.BrowserShare[s.Browser]++
		out.OSShare[s.OS]++
		playsByVideo[s.VideoRank]++
		lens = append(lens, s.VideoLenSec)
		if s.US {
			us++
		}
	}
	n := float64(out.Sessions)
	for k := range out.BrowserShare {
		out.BrowserShare[k] /= n
	}
	for k := range out.OSShare {
		out.OSShare[k] /= n
	}
	out.USClientShare = float64(us) / n
	out.VideoLenCCDF = stats.NewECDF(lens)

	// Rank-vs-frequency series and the top-10% share.
	type rp struct {
		rank, plays int
	}
	var rps []rp
	total := 0
	for rank, plays := range playsByVideo {
		rps = append(rps, rp{rank, plays})
		total += plays
	}
	sort.Slice(rps, func(i, j int) bool { return rps[i].plays > rps[j].plays })
	maxRank := 0
	for _, e := range rps {
		if e.rank > maxRank {
			maxRank = e.rank
		}
	}
	topCut := maxRank / 10
	topPlays := 0
	for rank, plays := range playsByVideo {
		if rank <= topCut {
			topPlays += plays
		}
	}
	if total > 0 {
		out.Top10VideoShare = float64(topPlays) / float64(total)
	}
	for i, e := range rps {
		out.RankPlays = append(out.RankPlays, stats.Point{
			X: float64(i+1) / float64(len(rps)),
			Y: float64(e.plays) / float64(total),
		})
	}

	misses := 0
	for i := range d.Chunks {
		if !d.Chunks[i].CacheHit {
			misses++
		}
	}
	if out.Chunks > 0 {
		out.OverallMissRate = float64(misses) / float64(out.Chunks)
	}
	return out
}

// ServerVsNetworkLatency reports the §4.1 comparison: for most chunks the
// network dominates the server, and the exceptions are dominated by cache
// misses (paper: server > network for 5% of chunks, with a 40% miss ratio
// among those vs 2% overall).
type ServerVsNetworkLatency struct {
	ServerDominatesShare  float64
	MissRateWhenDominates float64
	MissRateOverall       float64
}

// CompareServerVsNetwork computes the server-vs-network dominance split.
func CompareServerVsNetwork(d *core.Dataset) ServerVsNetworkLatency {
	dominates, missesDom, misses := 0, 0, 0
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if !c.CacheHit {
			misses++
		}
		if c.ServerLatencyMS() > c.BaselineRTTSampleMS() {
			dominates++
			if !c.CacheHit {
				missesDom++
			}
		}
	}
	var out ServerVsNetworkLatency
	if n := len(d.Chunks); n > 0 {
		out.ServerDominatesShare = float64(dominates) / float64(n)
		out.MissRateOverall = float64(misses) / float64(n)
	}
	if dominates > 0 {
		out.MissRateWhenDominates = float64(missesDom) / float64(dominates)
	}
	return out
}
