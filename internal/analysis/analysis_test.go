package analysis

import (
	"math"
	"sync"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/stats"
	"vidperf/internal/workload"
)

var (
	dsOnce sync.Once
	dsMain *core.Dataset
)

// mainDataset simulates one shared, proxy-filtered trace for all analysis
// tests (large enough for stable shapes, small enough for fast tests).
func mainDataset() *core.Dataset {
	dsOnce.Do(func() {
		res, err := session.Execute(workload.Scenario{
			Seed:              2016,
			NumSessions:       6000,
			NumPrefixes:       900,
			MeanWatchedChunks: 12,
			Catalog:           catalog.Config{NumVideos: 3000},
		}, session.Options{})
		if err != nil {
			panic(err)
		}
		raw := res.Dataset
		dsMain = core.FilterProxies(raw, core.ProxyFilterConfig{}).Kept
	})
	return dsMain
}

func TestStartupVsServerLatencyIncreases(t *testing.T) {
	fig := StartupVsServerLatency(mainDataset(), 50, 600)
	if len(fig.Bins) != 12 {
		t.Fatalf("bins = %d", len(fig.Bins))
	}
	first, last := fig.Bins[0], lastNonEmpty(fig.Bins)
	if first.N == 0 || last.N == 0 {
		t.Fatal("empty extremity bins")
	}
	// Medians are robust to the heavy session tail; the additive server
	// latency must show up there.
	if last.Median <= first.Median {
		t.Errorf("median startup should rise with server latency: %.2f -> %.2f",
			first.Median, last.Median)
	}
}

func lastNonEmpty(bins []stats.BinStat) stats.BinStat {
	for i := len(bins) - 1; i >= 0; i-- {
		if bins[i].N > 5 {
			return bins[i]
		}
	}
	return bins[0]
}

func TestCDNBreakdownShape(t *testing.T) {
	br := BreakdownCDNLatency(mainDataset())
	// Paper: median hit ~2 ms, miss ~80 ms (40x), wait/open sub-ms.
	if br.MedianHitMS > 8 {
		t.Errorf("median hit = %.2f ms, want ~2", br.MedianHitMS)
	}
	if br.MedianMissMS < 40 || br.MedianMissMS > 180 {
		t.Errorf("median miss = %.2f ms, want ~80", br.MedianMissMS)
	}
	if br.MedianMissMS/br.MedianHitMS < 10 {
		t.Errorf("miss/hit = %.1f, want order of magnitude", br.MedianMissMS/br.MedianHitMS)
	}
	if br.Dwait.Quantile(0.9) > 2 {
		t.Errorf("p90 Dwait = %.2f ms, want < 1-2 ms", br.Dwait.Quantile(0.9))
	}
	// Bimodal Dread: a low mode (RAM) and a high mode past the 10 ms
	// retry timer.
	if br.Dread.Quantile(0.5) > 8 {
		t.Errorf("median Dread = %.2f, want RAM-fast", br.Dread.Quantile(0.5))
	}
	if br.Dread.Quantile(0.95) < 10 {
		t.Errorf("p95 Dread = %.2f, want past the 10 ms retry", br.Dread.Quantile(0.95))
	}
	if br.RetryTimerChunkShare < 0.10 || br.RetryTimerChunkShare > 0.6 {
		t.Errorf("retry-timer share = %.2f, want ~0.35", br.RetryTimerChunkShare)
	}
}

func TestPopularityGradient(t *testing.T) {
	pts := PerformanceVsPopularity(mainDataset(), []int{0, 1000, 2000, 2500})
	if len(pts) != 4 {
		t.Fatal("missing thresholds")
	}
	// Fig. 6: unpopular videos (higher rank thresholds) miss more and are
	// slower even on hits.
	if pts[len(pts)-1].MissPct <= pts[0].MissPct {
		t.Errorf("miss%% not rising with rank: %.2f -> %.2f",
			pts[0].MissPct, pts[len(pts)-1].MissPct)
	}
	if pts[len(pts)-1].MedianHitServerMS <= pts[0].MedianHitServerMS {
		t.Errorf("hit latency not rising with rank: %.2f -> %.2f",
			pts[0].MedianHitServerMS, pts[len(pts)-1].MedianHitServerMS)
	}
}

func TestMissPersistence(t *testing.T) {
	mp := ComputeMissPersistence(mainDataset())
	if mp.SessionsWithMiss == 0 {
		t.Fatal("no sessions with misses")
	}
	// Paper: mean per-session miss ratio ~60% once one miss occurs.
	if mp.MeanMissRatioGivenMiss < 0.3 {
		t.Errorf("miss persistence = %.2f, want strong clustering (~0.6)",
			mp.MeanMissRatioGivenMiss)
	}
	if mp.MeanHighReadRatioGivenHigh < 0.2 {
		t.Errorf("high-read persistence = %.2f", mp.MeanHighReadRatioGivenHigh)
	}
}

func TestLoadParadoxNegativeCorrelation(t *testing.T) {
	lp := ComputeLoadParadox(mainDataset())
	if len(lp.Points) < 20 {
		t.Fatalf("only %d servers with traffic", len(lp.Points))
	}
	if math.IsNaN(lp.Correlation) || lp.Correlation >= 0 {
		t.Errorf("load/latency correlation = %.3f, want negative (paradox)", lp.Correlation)
	}
}

func TestLatencyDistributionsFig8(t *testing.T) {
	ld := ComputeLatencyDistributions(mainDataset())
	if ld.SRTTMin.N() == 0 || ld.SRTTStd.N() == 0 {
		t.Fatal("empty distributions")
	}
	// Most sessions have a low baseline; a tail exceeds 100 ms.
	if med := ld.SRTTMin.Quantile(0.5); med > 100 {
		t.Errorf("median srtt_min = %.1f, want mostly low", med)
	}
	if tail := ld.SRTTMin.CCDFAt(100); tail <= 0 || tail > 0.45 {
		t.Errorf("P(srtt_min>100ms) = %.3f, want a modest tail", tail)
	}
}

func TestTailPrefixesFig9(t *testing.T) {
	tp := ComputeTailPrefixes(mainDataset(), 100, 80)
	if tp.TailPrefixes == 0 {
		t.Fatal("no tail prefixes found")
	}
	// Paper: 75% of tail prefixes are outside the US (we accept a band —
	// the US/non-US mix at laptop scale is coarser).
	if tp.NonUSShare < 0.2 {
		t.Errorf("non-US share of tail = %.2f, want substantial", tp.NonUSShare)
	}
	// Among close-by US tail prefixes, enterprises must be heavily
	// over-represented (paper: 90%; our short window also catches
	// bufferbloated DSL prefixes the paper's 18-day minimum filters out,
	// so the share is lower — see EXPERIMENTS.md).
	if tp.CloseUSCount > 5 && tp.CloseUSEnterpriseShare < 0.3 {
		t.Errorf("close-by US tail enterprise share = %.2f, want dominant",
			tp.CloseUSEnterpriseShare)
	}
}

func TestPathVariationFig10(t *testing.T) {
	pv := ComputePathVariation(mainDataset(), 3)
	if pv.Paths < 50 {
		t.Fatalf("only %d paths", pv.Paths)
	}
	// Paper: ~40% of (prefix, PoP) paths show CV > 1. Our 30-minute
	// arrival window cannot reproduce 18 days of diurnal spread, so the
	// share is structurally lower; the distribution must still be
	// heavy-tailed with a non-trivial high-CV mass (see EXPERIMENTS.md).
	if pv.HighCVShare < 0.015 || pv.HighCVShare > 0.7 {
		t.Errorf("high-CV path share = %.3f, want heavy tail (paper 0.4)", pv.HighCVShare)
	}
	if pv.CVs.Quantile(0.99) < 1 {
		t.Errorf("p99 path CV = %.2f, want > 1", pv.CVs.Quantile(0.99))
	}
}

func TestOrgVariabilityTable4(t *testing.T) {
	ov := ComputeOrgVariability(mainDataset(), 20, 5)
	if len(ov.Top) == 0 {
		t.Fatal("no orgs qualified")
	}
	// The top of the list should be enterprises, far above the
	// residential baseline (~1%).
	entAtTop := 0
	for _, row := range ov.Top {
		if row.Enterprise {
			entAtTop++
		}
	}
	if entAtTop < len(ov.Top)/2+1 {
		t.Errorf("only %d/%d top-variability orgs are enterprises", entAtTop, len(ov.Top))
	}
	if ov.Top[0].Percentage < 3*math.Max(ov.ResidentialHighCVPct, 0.2) {
		t.Errorf("top org %.1f%% not ≫ residential %.1f%%",
			ov.Top[0].Percentage, ov.ResidentialHighCVPct)
	}
	if ov.ResidentialHighCVPct > 10 {
		t.Errorf("residential high-CV share %.1f%% too high (paper ~1%%)",
			ov.ResidentialHighCVPct)
	}
}

func TestLossSplitFig11(t *testing.T) {
	ls := SplitByLoss(mainDataset())
	if ls.LenLoss.N() == 0 || ls.LenNoLoss.N() == 0 {
		t.Fatal("loss split empty")
	}
	// Paper: >90% of sessions below 10% retx; ~40% loss-free.
	if ls.SubTenPctShare < 0.85 {
		t.Errorf("sub-10%%-retx share = %.2f, want >0.9", ls.SubTenPctShare)
	}
	if ls.NoLossShare < 0.15 || ls.NoLossShare > 0.8 {
		t.Errorf("no-loss share = %.2f, want ~0.4", ls.NoLossShare)
	}
	// Length and bitrate distributions are similar; rebuffering differs.
	if gap := math.Abs(ls.LenLoss.Quantile(0.5) - ls.LenNoLoss.Quantile(0.5)); gap > 6 {
		t.Errorf("session-length medians too different: %.1f", gap)
	}
	rebufLossTail := ls.RebufLoss.CCDFAt(1) // P(rebuf rate > 1%)
	rebufCleanTail := ls.RebufNoLoss.CCDFAt(1)
	if rebufLossTail <= rebufCleanTail {
		t.Errorf("loss sessions should rebuffer more: %.3f vs %.3f",
			rebufLossTail, rebufCleanTail)
	}
}

func TestRebufVsRetxFig12(t *testing.T) {
	bins := RebufVsRetx(mainDataset(), 2, 10)
	if len(bins) != 5 {
		t.Fatal("bad bins")
	}
	if bins[0].N == 0 {
		t.Fatal("first bin empty")
	}
	hi := bins[len(bins)-1]
	for i := len(bins) - 1; i >= 0; i-- {
		if bins[i].N > 10 {
			hi = bins[i]
			break
		}
	}
	if hi.Mean <= bins[0].Mean {
		t.Errorf("rebuffering not rising with retx: %.3f -> %.3f", bins[0].Mean, hi.Mean)
	}
}

func TestRebufByChunkIDFig14(t *testing.T) {
	rb := ComputeRebufByChunkID(mainDataset(), 20)
	if len(rb.PRebuf) != 21 {
		t.Fatal("bad length")
	}
	// Conditioning on loss raises rebuffering probability, most strongly
	// at the first chunks.
	if rb.PRebufGivenLoss[1] <= rb.PRebuf[1] {
		t.Errorf("conditioning on loss did not raise P(rebuf): %.2f vs %.2f",
			rb.PRebufGivenLoss[1], rb.PRebuf[1])
	}
	early := (rb.PRebufGivenLoss[1] + rb.PRebufGivenLoss[2]) / 2
	late := (rb.PRebufGivenLoss[8] + rb.PRebufGivenLoss[9] + rb.PRebufGivenLoss[10]) / 3
	if early <= late {
		t.Errorf("early-loss impact %.2f not above late %.2f", early, late)
	}
}

func TestRetxByChunkIDFig15(t *testing.T) {
	rates := RetxByChunkID(mainDataset(), 20)
	if rates[0] <= rates[5] || rates[0] <= rates[10] {
		t.Errorf("chunk-0 retx %.3f%% not the maximum (c5=%.3f c10=%.3f)",
			rates[0], rates[5], rates[10])
	}
}

func TestPerfScoreSplitFig16(t *testing.T) {
	ps := SplitPerfScores(mainDataset())
	if ps.BadDLB.N() == 0 || ps.GoodDLB.N() == 0 {
		t.Fatal("perfscore split empty")
	}
	// Bad chunks are throughput-dominated: lower latency share, much
	// larger D_LB; D_FB differs far less than D_LB.
	if ps.BadShare.Quantile(0.5) >= ps.GoodShare.Quantile(0.5) {
		t.Errorf("bad chunks should have lower latency share: %.3f vs %.3f",
			ps.BadShare.Quantile(0.5), ps.GoodShare.Quantile(0.5))
	}
	dlbGap := ps.BadDLB.Quantile(0.5) / ps.GoodDLB.Quantile(0.5)
	dfbGap := ps.BadDFB.Quantile(0.5) / ps.GoodDFB.Quantile(0.5)
	if dlbGap < 2 {
		t.Errorf("bad-chunk D_LB median only %.1fx the good ones", dlbGap)
	}
	if dfbGap > dlbGap {
		t.Errorf("D_FB gap (%.1fx) exceeds D_LB gap (%.1fx): latency, not throughput",
			dfbGap, dlbGap)
	}
}

func TestStackOutlierDetection(t *testing.T) {
	rep := DetectStackOutliersDataset(mainDataset())
	if rep.TruthTotal == 0 {
		t.Skip("no transients generated at this scale")
	}
	if rep.OutlierChunks == 0 {
		t.Fatal("Eq.4 found nothing despite injected transients")
	}
	// Chunk share near the paper's 0.32%, generous band.
	if rep.ChunkShare > 0.02 {
		t.Errorf("outlier chunk share = %.4f, want ~0.003", rep.ChunkShare)
	}
	precision := float64(rep.TruePositives) / float64(rep.OutlierChunks)
	if precision < 0.5 {
		t.Errorf("Eq.4 precision = %.2f against ground truth", precision)
	}
}

func TestPersistentStackTable5(t *testing.T) {
	ps := ComputePersistentStack(mainDataset(), 50, 8)
	if len(ps.Top) == 0 {
		t.Fatal("no platform rows")
	}
	// Paper: 17.6% of chunks with non-zero D_DS; among them the stack
	// usually dominates D_FB (84%).
	if ps.NonZeroShare < 0.03 || ps.NonZeroShare > 0.4 {
		t.Errorf("non-zero D_DS share = %.3f, want ~0.176", ps.NonZeroShare)
	}
	if ps.DominantShare < 0.5 {
		t.Errorf("stack-dominant share = %.2f, want high (~0.84)", ps.DominantShare)
	}
	// Safari off-Mac should rank above Chrome when both qualify.
	pos := map[string]int{}
	for i, row := range ps.Top {
		pos[row.Browser+"/"+row.OS] = i + 1
	}
	if sw, ok := pos["Safari/Windows"]; ok {
		if cw, ok2 := pos["Chrome/Windows"]; ok2 && sw > cw {
			t.Errorf("Safari/Windows (#%d) should rank above Chrome/Windows (#%d)", sw, cw)
		}
	}
}

func TestFirstChunkDFBFig18(t *testing.T) {
	f := ComputeFirstChunkDFB(mainDataset(), EquivalentSetConfig{
		SRTTMinMS: 40, SRTTMaxMS: 80, MaxDCDNms: 5, MinCWND: 10,
	})
	if f.FirstN < 20 || f.OtherN < 20 {
		t.Skipf("equivalent set too small: %d/%d", f.FirstN, f.OtherN)
	}
	// Paper: first chunks' median D_FB ~300 ms above the rest.
	if f.MedianGapMS < 100 {
		t.Errorf("first-chunk D_FB gap = %.0f ms, want ~300", f.MedianGapMS)
	}
}

func TestDDSVsRebuffering(t *testing.T) {
	r := ComputeDDSVsRebuffering(mainDataset())
	if math.IsNaN(r.MeanDDSNoRebuf) {
		t.Fatal("no clean sessions")
	}
	if !math.IsNaN(r.MeanDDSOver10) && r.MeanDDSOver10 <= r.MeanDDSNoRebuf {
		t.Errorf("D_DS should rise with rebuffering: clean %.0f vs >10%% %.0f",
			r.MeanDDSNoRebuf, r.MeanDDSOver10)
	}
}

func TestDropsVsRateFig19(t *testing.T) {
	f := ComputeDropsVsRate(mainDataset(), 0.5, 5)
	if f.HardwareMeanPct > 2 {
		t.Errorf("hardware bar = %.2f%%, want ~0", f.HardwareMeanPct)
	}
	// Drops fall with rate and flatten past 1.5.
	lowBin, midBin, hiBin := f.Bins[1], f.Bins[2], f.Bins[4] // [0.5,1), [1,1.5), [2,2.5)
	if lowBin.N == 0 || hiBin.N == 0 {
		t.Skip("sparse bins at this scale")
	}
	if !(lowBin.Mean > midBin.Mean && midBin.Mean > hiBin.Mean) {
		t.Errorf("drop curve not decreasing: %.1f %.1f %.1f",
			lowBin.Mean, midBin.Mean, hiBin.Mean)
	}
}

func TestRateHypothesisShares(t *testing.T) {
	rh := CheckRateHypothesis(mainDataset())
	if rh.Chunks == 0 {
		t.Fatal("no software-rendered chunks")
	}
	// Paper: 85.5% confirm, 5.7% low-rate-good, 6.9% high-rate-bad.
	if rh.ConfirmShare < 0.6 {
		t.Errorf("confirm share = %.3f, want high (~0.85)", rh.ConfirmShare)
	}
	if rh.LowRateGoodShare+rh.HighRateBadShare > 0.4 {
		t.Errorf("exceptions = %.3f, want small", rh.LowRateGoodShare+rh.HighRateBadShare)
	}
}

func TestBrowserRenderingFig21(t *testing.T) {
	rows := ComputeBrowserRendering(mainDataset())
	if len(rows) < 4 {
		t.Fatalf("only %d rows", len(rows))
	}
	byKey := map[string]BrowserRenderRow{}
	for _, r := range rows {
		byKey[r.OS+"/"+r.Browser] = r
	}
	cw, ok1 := byKey["Windows/Chrome"]
	fw, ok2 := byKey["Windows/Firefox"]
	if !ok1 || !ok2 {
		t.Fatal("missing major browsers")
	}
	if cw.ChunkShare < 25 || fw.ChunkShare < 20 {
		t.Errorf("browser shares off: chrome %.1f firefox %.1f", cw.ChunkShare, fw.ChunkShare)
	}
	// Integrated-Flash Chrome renders better than Firefox.
	if cw.DroppedPct >= fw.DroppedPct {
		t.Errorf("Chrome drops (%.2f) should be below Firefox (%.2f)",
			cw.DroppedPct, fw.DroppedPct)
	}
}

func TestUnpopularBrowsersFig22(t *testing.T) {
	rep := ComputeUnpopularBrowsers(mainDataset(), 30)
	if len(rep.Rows) == 0 {
		t.Skip("no unpopular-browser rows at this scale")
	}
	for _, row := range rep.Rows {
		if row.DroppedPct <= rep.RestAverage {
			t.Errorf("%s drops %.2f%% not above popular average %.2f%%",
				row.Label, row.DroppedPct, rep.RestAverage)
		}
	}
}

func TestBitrateParadox(t *testing.T) {
	rows := ComputeBitrateRenderingParadox(mainDataset())
	if rows[0].Chunks == 0 || rows[1].Chunks == 0 {
		t.Fatal("bitrate split empty")
	}
	// §4.4-2: high-bitrate chunks ride better connections (lower SRTT
	// variation / retx), so their rendering is no worse.
	if rows[1].MeanSRTTVar > rows[0].MeanSRTTVar {
		t.Errorf("high-bitrate SRTTVar %.2f above low-bitrate %.2f",
			rows[1].MeanSRTTVar, rows[0].MeanSRTTVar)
	}
	if rows[1].MeanRetxPct > rows[0].MeanRetxPct {
		t.Errorf("high-bitrate retx %.3f above low-bitrate %.3f",
			rows[1].MeanRetxPct, rows[0].MeanRetxPct)
	}
}

func TestDatasetStats(t *testing.T) {
	st := ComputeDatasetStats(mainDataset())
	if st.Sessions == 0 || st.Chunks == 0 {
		t.Fatal("empty stats")
	}
	if st.BrowserShare["Chrome"] < 0.3 || st.BrowserShare["Firefox"] < 0.25 {
		t.Errorf("browser mix off: %+v", st.BrowserShare)
	}
	if st.OSShare["Windows"] < 0.8 {
		t.Errorf("Windows share = %.2f", st.OSShare["Windows"])
	}
	if st.Top10VideoShare < 0.5 || st.Top10VideoShare > 0.85 {
		t.Errorf("top-10%% play share = %.2f, want ~0.66", st.Top10VideoShare)
	}
	if st.OverallMissRate <= 0 || st.OverallMissRate > 0.30 {
		t.Errorf("overall miss rate = %.3f, want a few percent", st.OverallMissRate)
	}
	if st.USClientShare < 0.85 {
		t.Errorf("US share = %.2f, want >0.9", st.USClientShare)
	}
	if len(st.RankPlays) == 0 || st.VideoLenCCDF.N() == 0 {
		t.Error("missing Fig. 3 series")
	}
}

func TestServerVsNetwork(t *testing.T) {
	sv := CompareServerVsNetwork(mainDataset())
	// Paper: network dominates for ~95% of chunks; misses are heavily
	// overrepresented where the server dominates.
	if sv.ServerDominatesShare > 0.3 {
		t.Errorf("server dominates %.2f of chunks, want small (~0.05)",
			sv.ServerDominatesShare)
	}
	if sv.MissRateWhenDominates <= sv.MissRateOverall {
		t.Errorf("miss rate when server dominates (%.3f) should exceed overall (%.3f)",
			sv.MissRateWhenDominates, sv.MissRateOverall)
	}
}
