package analysis

import (
	"testing"

	"vidperf/internal/proxypop"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// proxySnapshot simulates a small proxied campaign and returns its
// telemetry snapshot.
func proxySnapshot(t *testing.T) *telemetry.Snapshot {
	t.Helper()
	res, err := session.Execute(workload.Scenario{
		Seed:        33,
		NumSessions: 600,
		NumPrefixes: 150,
		Proxy:       proxypop.Config{Share: 0.25, Cohorts: 4, EgressKbps: 25000},
	}, session.Options{Telemetry: true, SketchK: 64})
	if err != nil {
		t.Fatal(err)
	}
	return res.Snapshot
}

// TestStreamProxyView checks the sketch-backed proxied-population
// report: the view is recognized, the CV splits partition the
// population, the per-cohort counts sum to the proxied total, and the
// ground-truth share tracks the configured one.
func TestStreamProxyView(t *testing.T) {
	pv := StreamProxy(proxySnapshot(t))
	if !pv.Enabled() {
		t.Fatal("proxied snapshot not recognized")
	}
	if pv.Sessions != 600 {
		t.Fatalf("sessions = %d", pv.Sessions)
	}
	if got := pv.CVProxied.N() + pv.CVClear.N(); got != pv.Sessions {
		t.Errorf("CV splits cover %d of %d sessions", got, pv.Sessions)
	}
	if pv.Proxied == 0 || pv.Proxied != pv.CVProxied.N() {
		t.Errorf("proxied counter %d vs proxied sketch %d", pv.Proxied, pv.CVProxied.N())
	}
	var cohortSum uint64
	for _, d := range pv.Cohorts {
		cohortSum += d.N
	}
	if cohortSum != pv.Proxied {
		t.Errorf("cohort counts sum to %d, want %d", cohortSum, pv.Proxied)
	}
	if pv.IPMismatch == 0 || pv.IPMismatch > pv.Proxied {
		t.Errorf("IP-mismatch count %d outside (0, %d]", pv.IPMismatch, pv.Proxied)
	}
	if share := pv.ProxiedShare(); share < 0.2 || share > 0.3 {
		t.Errorf("ground-truth share %.3f far from configured 0.25", share)
	}
}

// TestStreamProxyDisabled: a plain snapshot yields a disabled view, and
// the zero view's share is defined (0, not NaN).
func TestStreamProxyDisabled(t *testing.T) {
	res, err := session.Execute(workload.Scenario{
		Seed: 33, NumSessions: 200, NumPrefixes: 80,
	}, session.Options{Telemetry: true, SketchK: 64})
	if err != nil {
		t.Fatal(err)
	}
	if pv := StreamProxy(res.Snapshot); pv.Enabled() {
		t.Fatal("plain snapshot recognized as proxied")
	}
	if got := (StreamingProxy{}).ProxiedShare(); got != 0 {
		t.Errorf("zero view share = %g", got)
	}
}
