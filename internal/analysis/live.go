// live.go extracts the live-streaming view from a telemetry snapshot:
// the join-time and live-edge-lag distributions, the per-channel session
// mix, and the campaign-wide channel-switch count (internal/live). Like
// the diagnosis view, it is entirely sketch- and counter-backed, so it
// survives one-pass aggregation at any campaign size.
package analysis

import (
	"vidperf/internal/telemetry"
)

// StreamingLive is the live-mode report of one snapshot.
type StreamingLive struct {
	// JoinTime is the arrival-to-first-frame distribution (ms) of
	// sessions joining a channel in progress.
	JoinTime *telemetry.QuantileSketch
	// EdgeLag is the per-session total publish-clock wait (ms).
	EdgeLag *telemetry.QuantileSketch

	Sessions uint64               // total sessions in the snapshot
	Switches uint64               // mid-stream channel switches, campaign-wide
	Channels []telemetry.DimCount // sessions per join channel, sorted by channel

	enabled bool
}

// Enabled reports whether the snapshot carries live-mode state at all
// (the sketches are created eagerly in live mode, so even an empty live
// campaign is recognized).
func (l StreamingLive) Enabled() bool { return l.enabled }

// StreamLive extracts the live-mode view from a snapshot.
func StreamLive(sn *telemetry.Snapshot) StreamingLive {
	_, ok := sn.Sketches[telemetry.MetricLiveEdgeLagMS]
	return StreamingLive{
		JoinTime: sn.Sketch(telemetry.MetricJoinTimeMS),
		EdgeLag:  sn.Sketch(telemetry.MetricLiveEdgeLagMS),
		Sessions: sn.Counter(telemetry.CounterSessions),
		Switches: sn.Counter(telemetry.CounterLiveSwitches),
		Channels: telemetry.CountersByDim(sn.Counters, telemetry.CounterSessions, telemetry.LiveChannelDim),
		enabled:  ok,
	}
}
