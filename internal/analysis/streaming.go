// streaming.go holds the sketch-backed counterparts of the exact
// analyses: each Stream* function computes from a telemetry.Snapshot what
// its batch sibling computes from a materialized core.Dataset, within the
// sketches' documented rank-error bound. The parity tests in
// internal/telemetry pin the two paths together on the shared campaign.
package analysis

import (
	"vidperf/internal/telemetry"
)

// StreamingCDNBreakdown mirrors CDNLatencyBreakdown (Fig. 5) computed
// from a snapshot: component sketches instead of ECDFs, counters for the
// retry-timer share.
type StreamingCDNBreakdown struct {
	Dwait, Dopen, Dread  *telemetry.QuantileSketch
	TotalHit, TotalMiss  *telemetry.QuantileSketch
	MedianHitMS          float64
	MedianMissMS         float64
	RetryTimerChunkShare float64
}

// StreamBreakdownCDNLatency computes the Fig. 5 breakdown from a
// telemetry snapshot.
func StreamBreakdownCDNLatency(sn *telemetry.Snapshot) StreamingCDNBreakdown {
	hit := sn.Sketch(telemetry.MetricServerHitMS)
	miss := sn.Sketch(telemetry.MetricServerMissMS)
	out := StreamingCDNBreakdown{
		Dwait:        sn.Sketch(telemetry.MetricDwaitMS),
		Dopen:        sn.Sketch(telemetry.MetricDopenMS),
		Dread:        sn.Sketch(telemetry.MetricDreadMS),
		TotalHit:     hit,
		TotalMiss:    miss,
		MedianHitMS:  hit.Quantile(0.5),
		MedianMissMS: miss.Quantile(0.5),
	}
	if chunks := sn.Counter(telemetry.CounterChunks); chunks > 0 {
		out.RetryTimerChunkShare = float64(sn.Counter(telemetry.CounterChunksRetryTimer)) / float64(chunks)
	}
	return out
}

// StreamingQoE summarizes the per-session QoE distributions of a
// snapshot: startup delay and re-buffering ratio, plus the share of
// sessions that never started playback (the NaN-startup sessions the
// exact path also excludes from the startup distribution).
type StreamingQoE struct {
	Startup           *telemetry.QuantileSketch // ms, started sessions only
	RebufferRate      *telemetry.QuantileSketch // fraction of session time stalled
	StartupHist       *telemetry.Histogram
	Sessions          uint64
	NeverStarted      uint64
	NeverStartedShare float64
}

// StreamQoESummary extracts the QoE view from a snapshot.
func StreamQoESummary(sn *telemetry.Snapshot) StreamingQoE {
	out := StreamingQoE{
		Startup:      sn.Sketch(telemetry.MetricStartupMS),
		RebufferRate: sn.Sketch(telemetry.MetricRebufferRate),
		StartupHist:  sn.Histogram(telemetry.MetricStartupMS),
		Sessions:     sn.Counter(telemetry.CounterSessions),
		NeverStarted: sn.Counter(telemetry.CounterSessionsNeverStart),
	}
	if out.Sessions > 0 {
		out.NeverStartedShare = float64(out.NeverStarted) / float64(out.Sessions)
	}
	return out
}

// PoPHitRatio is one PoP's row of the streaming hit-ratio table.
type PoPHitRatio struct {
	PoP      int
	Chunks   uint64
	Hits     uint64
	HitRatio float64
}

// StreamingMix is the dimensioned-counter view of a snapshot: cache hit
// ratios overall, per PoP and per cache level, the bitrate mix, and the
// session mix by org type. Rows are sorted by dimension value, so output
// is deterministic.
type StreamingMix struct {
	Chunks   uint64
	Hits     uint64
	Overall  float64 // campaign-wide hit ratio
	ByPoP    []PoPHitRatio
	ByLevel  []telemetry.DimCount // chunks per cache level ("ram", "disk", "miss")
	Bitrates []telemetry.DimCount // chunks per ladder rung
	Orgs     []telemetry.DimCount // sessions per org type
}

// StreamHitRatios computes the hit-ratio and mix tables from a snapshot's
// counters. These are exact (counters, not sketches).
func StreamHitRatios(sn *telemetry.Snapshot) StreamingMix {
	out := StreamingMix{
		Chunks:   sn.Counter(telemetry.CounterChunks),
		Hits:     sn.Counter(telemetry.CounterChunksHit),
		ByLevel:  telemetry.CountersByDim(sn.Counters, telemetry.CounterChunks, "cache"),
		Bitrates: telemetry.CountersByDim(sn.Counters, telemetry.CounterChunks, "bitrate"),
		Orgs:     telemetry.CountersByDim(sn.Counters, telemetry.CounterSessions, "org"),
	}
	if out.Chunks > 0 {
		out.Overall = float64(out.Hits) / float64(out.Chunks)
	}
	hitsByPoP := map[int]uint64{}
	for _, d := range telemetry.CountersByDim(sn.Counters, telemetry.CounterChunksHit, "pop") {
		hitsByPoP[d.IntValue()] = d.N
	}
	for _, d := range telemetry.CountersByDim(sn.Counters, telemetry.CounterChunks, "pop") {
		row := PoPHitRatio{PoP: d.IntValue(), Chunks: d.N, Hits: hitsByPoP[d.IntValue()]}
		if row.Chunks > 0 {
			row.HitRatio = float64(row.Hits) / float64(row.Chunks)
		}
		out.ByPoP = append(out.ByPoP, row)
	}
	return out
}

// StreamingLatency is the network-side sketch view: per-chunk D_FB, D_LB,
// SRTT and total server latency distributions (the Fig. 7/8/16 inputs
// that survive streaming aggregation).
type StreamingLatency struct {
	DFB, DLB, SRTT, Server *telemetry.QuantileSketch
}

// StreamLatencyDistributions extracts the latency sketches from a
// snapshot.
func StreamLatencyDistributions(sn *telemetry.Snapshot) StreamingLatency {
	return StreamingLatency{
		DFB:    sn.Sketch(telemetry.MetricDFBMS),
		DLB:    sn.Sketch(telemetry.MetricDLBMS),
		SRTT:   sn.Sketch(telemetry.MetricSRTTMS),
		Server: sn.Sketch(telemetry.MetricServerMS),
	}
}
