package analysis

import (
	"sort"

	"vidperf/internal/core"
	"vidperf/internal/stats"
)

// DropsVsRate reproduces Fig. 19: percent dropped frames binned by chunk
// download rate (sec/sec), software-rendered visible chunks only, plus the
// hardware-rendering reference bar.
type DropsVsRate struct {
	Bins            []stats.BinStat // x = sec/sec, y = dropped %
	HardwareMeanPct float64         // the figure's first bar
}

// ComputeDropsVsRate builds Fig. 19 with the given bin width over [0, max).
func ComputeDropsVsRate(d *core.Dataset, binWidth, maxRate float64) DropsVsRate {
	var xs, ys []float64
	var hw stats.Summary
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if !c.Visible || c.TotalFrames == 0 {
			continue
		}
		if c.HardwareRender {
			hw.Add(c.DroppedFrac() * 100)
			continue
		}
		xs = append(xs, c.DownloadRateSecPerSec())
		ys = append(ys, c.DroppedFrac()*100)
	}
	return DropsVsRate{
		Bins:            stats.BinnedStats(xs, ys, 0, maxRate, binWidth),
		HardwareMeanPct: hw.Mean(),
	}
}

// RateHypothesisReport quantifies §4.4-1's 1.5 sec/sec rule: the share of
// chunks confirming the hypothesis (bad framerate iff rate < 1.5), plus
// the two explained exception classes.
type RateHypothesisReport struct {
	ConfirmShare     float64 // paper: 85.5%
	LowRateGoodShare float64 // paper: 5.7% (buffer hides the shortfall)
	HighRateBadShare float64 // paper: 6.9% (CPU overload etc.)
	Chunks           int
}

// CheckRateHypothesis classifies software-rendered visible chunks by the
// (rate >= 1.5, dropped > 30%) quadrants.
func CheckRateHypothesis(d *core.Dataset) RateHypothesisReport {
	var confirm, lowGood, highBad, n int
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if !c.Visible || c.TotalFrames == 0 || c.HardwareRender {
			continue
		}
		n++
		lowRate := c.DownloadRateSecPerSec() < 1.5
		badFrames := c.DroppedFrac() > 0.30
		switch {
		case lowRate && badFrames, !lowRate && !badFrames:
			confirm++
		case lowRate && !badFrames:
			lowGood++
		default:
			highBad++
		}
	}
	out := RateHypothesisReport{Chunks: n}
	if n > 0 {
		out.ConfirmShare = float64(confirm) / float64(n)
		out.LowRateGoodShare = float64(lowGood) / float64(n)
		out.HighRateBadShare = float64(highBad) / float64(n)
	}
	return out
}

// BrowserRenderRow is one bar pair of Fig. 21: a browser's share of the
// platform's chunks and its mean dropped-frame percentage.
type BrowserRenderRow struct {
	OS         string
	Browser    string
	ChunkShare float64 // % of the platform's chunks
	DroppedPct float64 // mean % dropped among visible chunks
	Chunks     int
}

// ComputeBrowserRendering builds Fig. 21 for the two major platforms.
func ComputeBrowserRendering(d *core.Dataset) []BrowserRenderRow {
	type agg struct {
		chunks  int
		dropSum float64
		dropN   int
	}
	per := map[[2]string]*agg{}
	platformTotals := map[string]int{}
	for i := range d.Chunks {
		c := &d.Chunks[i]
		s := d.Session(c.SessionID)
		if s == nil || (s.OS != "Windows" && s.OS != "Mac") {
			continue
		}
		k := [2]string{s.OS, s.Browser}
		a := per[k]
		if a == nil {
			a = &agg{}
			per[k] = a
		}
		a.chunks++
		platformTotals[s.OS]++
		if c.Visible && c.TotalFrames > 0 {
			a.dropSum += c.DroppedFrac() * 100
			a.dropN++
		}
	}
	var rows []BrowserRenderRow
	for k, a := range per {
		row := BrowserRenderRow{OS: k[0], Browser: k[1], Chunks: a.chunks}
		if t := platformTotals[k[0]]; t > 0 {
			row.ChunkShare = float64(a.chunks) / float64(t) * 100
		}
		if a.dropN > 0 {
			row.DroppedPct = a.dropSum / float64(a.dropN)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].OS != rows[j].OS {
			return rows[i].OS < rows[j].OS
		}
		return rows[i].ChunkShare > rows[j].ChunkShare
	})
	return rows
}

// UnpopularBrowserRow is one bar of Fig. 22.
type UnpopularBrowserRow struct {
	Label      string // "Browser,OS"
	DroppedPct float64
	Chunks     int
}

// UnpopularBrowserReport is Fig. 22: dropped % for unpopular browsers on
// well-provisioned chunks (rate >= 1.5, visible), against the popular-
// browser average.
type UnpopularBrowserReport struct {
	Rows        []UnpopularBrowserRow
	RestAverage float64 // "Average in the rest"
}

// ComputeUnpopularBrowsers builds Fig. 22 (browsers with >= minChunks
// qualifying chunks).
func ComputeUnpopularBrowsers(d *core.Dataset, minChunks int) UnpopularBrowserReport {
	if minChunks == 0 {
		minChunks = 500
	}
	type agg struct {
		sum float64
		n   int
	}
	per := map[[2]string]*agg{}
	var rest stats.Summary
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if !c.Visible || c.TotalFrames == 0 || c.HardwareRender {
			continue
		}
		if c.DownloadRateSecPerSec() < 1.5 {
			continue
		}
		s := d.Session(c.SessionID)
		if s == nil {
			continue
		}
		if s.PopularBrowser {
			rest.Add(c.DroppedFrac() * 100)
			continue
		}
		k := [2]string{s.Browser, s.OS}
		a := per[k]
		if a == nil {
			a = &agg{}
			per[k] = a
		}
		a.sum += c.DroppedFrac() * 100
		a.n++
	}
	var rows []UnpopularBrowserRow
	for k, a := range per {
		if a.n < minChunks {
			continue
		}
		rows = append(rows, UnpopularBrowserRow{
			Label:      k[0] + "," + k[1],
			DroppedPct: a.sum / float64(a.n),
			Chunks:     a.n,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].DroppedPct > rows[j].DroppedPct })
	return UnpopularBrowserReport{Rows: rows, RestAverage: rest.Mean()}
}

// BitrateRenderingRow supports §4.4-2 (higher bitrates show *better*
// rendering in the wild because they ride better connections).
type BitrateRenderingRow struct {
	HighBitrate bool // >= 1 Mbps
	MeanDropPct float64
	MeanSRTTVar float64
	MeanRetxPct float64
	Chunks      int
}

// ComputeBitrateRenderingParadox splits software-rendered visible chunks
// at 1 Mbps and reports rendering quality alongside the confounders the
// paper identifies (SRTT variation and retransmission rate).
func ComputeBitrateRenderingParadox(d *core.Dataset) [2]BitrateRenderingRow {
	var out [2]BitrateRenderingRow
	var drop, srttvar, retx [2]stats.Summary
	for i := range d.Chunks {
		c := &d.Chunks[i]
		if !c.Visible || c.TotalFrames == 0 || c.HardwareRender {
			continue
		}
		idx := 0
		if c.BitrateKbps >= 1000 {
			idx = 1
		}
		drop[idx].Add(c.DroppedFrac() * 100)
		srttvar[idx].Add(c.SRTTVarMS)
		retx[idx].Add(c.LossRate() * 100)
	}
	for idx := 0; idx < 2; idx++ {
		out[idx] = BitrateRenderingRow{
			HighBitrate: idx == 1,
			MeanDropPct: drop[idx].Mean(),
			MeanSRTTVar: srttvar[idx].Mean(),
			MeanRetxPct: retx[idx].Mean(),
			Chunks:      drop[idx].N(),
		}
	}
	return out
}
