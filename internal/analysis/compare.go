// compare.go computes A/B deltas between two telemetry snapshots: the
// quantile shifts of every shared sketch metric and the movements of the
// scalar counters (plus derived rates). It is the analysis behind
// cmd/analyze -compare and the per-cell delta report the experiment
// campaign runner prints against its baseline cell.
package analysis

import (
	"math"
	"sort"
	"strings"

	"vidperf/internal/telemetry"
)

// CompareQuantiles are the quantiles every metric delta reports.
var CompareQuantiles = []float64{0.50, 0.90, 0.99}

// QuantileDelta is one quantile of one metric in both snapshots.
type QuantileDelta struct {
	Q        float64
	A, B     float64
	Delta    float64 // B - A (NaN when either side is empty)
	RelDelta float64 // Delta / |A| (NaN when A is 0 or either side empty)
}

// MetricDelta is the sketch-level comparison of one metric.
type MetricDelta struct {
	Name      string
	NA, NB    uint64 // sample counts
	Quantiles []QuantileDelta
}

// CounterDelta is one scalar counter in both snapshots.
type CounterDelta struct {
	Name     string
	A, B     uint64
	Delta    int64
	RelDelta float64 // Delta / A (NaN when A is 0)
}

// RateDelta is a derived ratio (hit ratio, retry share, …) in both
// snapshots.
type RateDelta struct {
	Name  string
	A, B  float64
	Delta float64
}

// SnapshotComparison is the full A/B delta report.
type SnapshotComparison struct {
	LabelsA, LabelsB map[string]string
	Metrics          []MetricDelta  // shared sketch metrics, sorted by name
	Counters         []CounterDelta // scalar (un-dimensioned) counters, sorted by name
	Rates            []RateDelta    // derived ratios
}

// CompareSnapshots diffs candidate b against baseline a. Sketch metrics
// present in only one snapshot are skipped (they have no comparable
// distribution); counters missing on one side compare against zero, and
// dimensioned counters (keys containing "=") are left to the mix tables.
func CompareSnapshots(a, b *telemetry.Snapshot) SnapshotComparison {
	out := SnapshotComparison{LabelsA: a.Labels, LabelsB: b.Labels}

	names := make([]string, 0, len(a.Sketches))
	for name := range a.Sketches {
		if _, ok := b.Sketches[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		sa, sb := a.Sketch(name), b.Sketch(name)
		md := MetricDelta{Name: name, NA: sa.N(), NB: sb.N()}
		for _, q := range CompareQuantiles {
			qa, qb := sa.Quantile(q), sb.Quantile(q)
			d := QuantileDelta{Q: q, A: qa, B: qb, Delta: qb - qa, RelDelta: math.NaN()}
			if !math.IsNaN(d.Delta) && qa != 0 {
				d.RelDelta = d.Delta / math.Abs(qa)
			}
			md.Quantiles = append(md.Quantiles, d)
		}
		out.Metrics = append(out.Metrics, md)
	}

	ctrs := map[string]bool{}
	for name := range a.Counters {
		ctrs[name] = true
	}
	for name := range b.Counters {
		ctrs[name] = true
	}
	cnames := make([]string, 0, len(ctrs))
	for name := range ctrs {
		if !strings.Contains(name, "=") {
			cnames = append(cnames, name)
		}
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		ca, cb := a.Counter(name), b.Counter(name)
		cd := CounterDelta{Name: name, A: ca, B: cb, Delta: int64(cb) - int64(ca), RelDelta: math.NaN()}
		if ca != 0 {
			cd.RelDelta = float64(cd.Delta) / float64(ca)
		}
		out.Counters = append(out.Counters, cd)
	}

	out.Rates = append(out.Rates,
		rateDelta("cache_hit_ratio", a, b, telemetry.CounterChunksHit, telemetry.CounterChunks),
		rateDelta("retry_timer_share", a, b, telemetry.CounterChunksRetryTimer, telemetry.CounterChunks),
		rateDelta("never_started_share", a, b, telemetry.CounterSessionsNeverStart, telemetry.CounterSessions),
	)

	// Window-share deltas: when both sides carry the same timeline
	// windows, diff each window's share of arrivals (a flash-crowd axis
	// shows up here as mass moving into the surge window; the per-window
	// QoE quantile shifts are already covered by the sketch metrics
	// above, whose names carry the window dimension).
	wa, wb := StreamWindows(a), StreamWindows(b)
	if wa.Enabled() && wb.Enabled() && len(wa.Rows) == len(wb.Rows) {
		for i, ra := range wa.Rows {
			rb := wb.Rows[i]
			if ra.Window.Name != rb.Window.Name {
				continue
			}
			out.Rates = append(out.Rates, RateDelta{
				Name:  "window_share_" + ra.Window.Name,
				A:     ra.Share,
				B:     rb.Share,
				Delta: rb.Share - ra.Share,
			})
		}
	}

	// Cause-share deltas: when either side carries diagnosis labels, diff
	// every label's share of sessions, so A/B campaign cells can report
	// which layer a knob change moved sessions into (flash-crowd cells
	// shifting from healthy to cache-miss-fetch, for instance).
	da, db := StreamDiagnosis(a), StreamDiagnosis(b)
	if da.Enabled() || db.Enabled() {
		for i, ra := range da.Rows {
			rb := db.Rows[i]
			out.Rates = append(out.Rates, RateDelta{
				Name:  "diag_share_" + string(ra.Label),
				A:     ra.Share,
				B:     rb.Share,
				Delta: rb.Share - ra.Share,
			})
		}
	}
	return out
}

func rateDelta(name string, a, b *telemetry.Snapshot, num, den string) RateDelta {
	return RateDelta{
		Name:  name,
		A:     ratio(a.Counter(num), a.Counter(den)),
		B:     ratio(b.Counter(num), b.Counter(den)),
		Delta: ratio(b.Counter(num), b.Counter(den)) - ratio(a.Counter(num), a.Counter(den)),
	}
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}
