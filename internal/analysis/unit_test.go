package analysis

// Unit tests on hand-built datasets (no simulation), covering edge cases
// the integration tests cannot isolate.

import (
	"math"
	"testing"

	"vidperf/internal/core"
)

// tinyDataset builds a fully hand-specified dataset: two sessions, one
// clean and one lossy/rebuffering.
func tinyDataset() *core.Dataset {
	d := &core.Dataset{
		Sessions: []core.SessionRecord{
			{
				SessionID: 1, US: true, PrefixID: 10, PoP: 0, OrgName: "ISP-A",
				OrgType: "residential", Browser: "Chrome", OS: "Windows",
				PopularBrowser: true, VideoRank: 0, NumChunks: 2,
				StartupMS: 900, AvgBitrateKbps: 3000, RebufferRate: 0,
				SRTTMinMS: 30, SRTTMeanMS: 35, SRTTStdMS: 3, SRTTCV: 0.086,
				RetxRate: 0, HadLoss: false, ServerID: 1,
			},
			{
				SessionID: 2, US: true, PrefixID: 11, PoP: 0, OrgName: "Corp-X",
				OrgType: "enterprise", Browser: "Safari", OS: "Windows",
				PopularBrowser: true, VideoRank: 100, NumChunks: 2,
				StartupMS: 2500, AvgBitrateKbps: 560, RebufferRate: 0.2,
				SRTTMinMS: 120, SRTTMeanMS: 300, SRTTStdMS: 330, SRTTCV: 1.1,
				RetxRate: 0.06, HadLoss: true, ServerID: 2,
			},
		},
		Chunks: []core.ChunkRecord{
			{SessionID: 1, ChunkID: 0, DFBms: 100, DLBms: 900, BitrateKbps: 3000,
				SizeBytes: 2250000, DurationSec: 6, CacheHit: true, CacheLevel: "ram",
				DwaitMS: 0.1, DopenMS: 0.3, DreadMS: 0.6,
				CWND: 50, SRTTms: 32, SRTTVarMS: 3, MSS: 1460, SegsSent: 1540,
				Visible: true, TotalFrames: 180, DroppedFrames: 2},
			{SessionID: 1, ChunkID: 1, DFBms: 80, DLBms: 800, BitrateKbps: 3000,
				SizeBytes: 2250000, DurationSec: 6, CacheHit: true, CacheLevel: "ram",
				DwaitMS: 0.1, DopenMS: 0.3, DreadMS: 0.5,
				CWND: 60, SRTTms: 33, SRTTVarMS: 3, MSS: 1460, SegsSent: 1540,
				Visible: true, TotalFrames: 180, DroppedFrames: 1},
			{SessionID: 2, ChunkID: 0, DFBms: 600, DLBms: 7000, BitrateKbps: 560,
				SizeBytes: 420000, DurationSec: 6, CacheHit: false, CacheLevel: "miss",
				DwaitMS: 0.2, DopenMS: 0.4, DreadMS: 10.5, DBEms: 85, RetryTimer: true,
				CWND: 12, SRTTms: 280, SRTTVarMS: 60, MSS: 1460,
				SegsSent: 288, SegsLost: 20, BufCount: 1, BufDurMS: 1500,
				Visible: true, TotalFrames: 180, DroppedFrames: 80},
			{SessionID: 2, ChunkID: 1, DFBms: 500, DLBms: 8000, BitrateKbps: 560,
				SizeBytes: 420000, DurationSec: 6, CacheHit: false, CacheLevel: "miss",
				DwaitMS: 0.2, DopenMS: 0.4, DreadMS: 10.8, DBEms: 90, RetryTimer: true,
				CWND: 10, SRTTms: 320, SRTTVarMS: 70, MSS: 1460,
				SegsSent: 288, SegsLost: 15,
				Visible: true, TotalFrames: 180, DroppedFrames: 70},
		},
	}
	d.Index()
	return d
}

func TestBreakdownOnTinyDataset(t *testing.T) {
	br := BreakdownCDNLatency(tinyDataset())
	if br.TotalHit.N() != 2 || br.TotalMiss.N() != 2 {
		t.Fatalf("hit/miss split wrong: %d/%d", br.TotalHit.N(), br.TotalMiss.N())
	}
	if br.RetryTimerChunkShare != 0.5 {
		t.Errorf("retry share = %v, want 0.5", br.RetryTimerChunkShare)
	}
	if br.MedianMissMS < 90 {
		t.Errorf("median miss = %v", br.MedianMissMS)
	}
}

func TestSplitByLossOnTinyDataset(t *testing.T) {
	ls := SplitByLoss(tinyDataset())
	if ls.LenLoss.N() != 1 || ls.LenNoLoss.N() != 1 {
		t.Fatal("session split wrong")
	}
	if ls.NoLossShare != 0.5 {
		t.Errorf("no-loss share = %v", ls.NoLossShare)
	}
	if ls.SubTenPctShare != 1.0 {
		t.Errorf("sub-10%% share = %v (both sessions are <10%% retx)", ls.SubTenPctShare)
	}
}

func TestRetxAndRebufByChunkOnTinyDataset(t *testing.T) {
	d := tinyDataset()
	rates := RetxByChunkID(d, 1)
	// chunk 0: (0 + 20/288)/2 ; chunk 1: (0 + 15/288)/2, in percent.
	want0 := (0 + 20.0/288*100) / 2
	if math.Abs(rates[0]-want0) > 1e-9 {
		t.Errorf("chunk0 retx = %v, want %v", rates[0], want0)
	}
	rb := ComputeRebufByChunkID(d, 1)
	if rb.PRebuf[0] != 50 { // one of two chunk-0s had a rebuffer
		t.Errorf("P(rebuf at 0) = %v, want 50", rb.PRebuf[0])
	}
	if rb.PRebufGivenLoss[0] != 100 { // the only lossy chunk-0 rebuffered
		t.Errorf("P(rebuf|loss at 0) = %v, want 100", rb.PRebufGivenLoss[0])
	}
}

func TestPerfScoreSplitOnTinyDataset(t *testing.T) {
	ps := SplitPerfScores(tinyDataset())
	// Session 1 chunks: 6/(1.0s) = 6 -> good; session 2: 6/7.6, 6/8.5 -> bad.
	if ps.GoodDFB.N() != 2 || ps.BadDFB.N() != 2 {
		t.Fatalf("split %d/%d", ps.GoodDFB.N(), ps.BadDFB.N())
	}
	if ps.BadChunkFrac != 0.5 {
		t.Errorf("bad frac = %v", ps.BadChunkFrac)
	}
}

func TestOrgVariabilityOnTinyDataset(t *testing.T) {
	ov := ComputeOrgVariability(tinyDataset(), 1, 5)
	if len(ov.Top) != 2 {
		t.Fatalf("rows = %d", len(ov.Top))
	}
	if ov.Top[0].OrgName != "Corp-X" || ov.Top[0].Percentage != 100 {
		t.Errorf("top row = %+v", ov.Top[0])
	}
	if ov.ResidentialHighCVPct != 0 {
		t.Errorf("residential = %v", ov.ResidentialHighCVPct)
	}
}

func TestPathVariationMinSessions(t *testing.T) {
	pv := ComputePathVariation(tinyDataset(), 3)
	if pv.Paths != 0 {
		t.Errorf("paths = %d, want 0 (each prefix has one session)", pv.Paths)
	}
	// minSessions below 2 clamps to 2.
	pv = ComputePathVariation(tinyDataset(), 0)
	if pv.Paths != 0 {
		t.Errorf("paths = %d", pv.Paths)
	}
}

func TestBrowserRenderingOnTinyDataset(t *testing.T) {
	rows := ComputeBrowserRendering(tinyDataset())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OS != "Windows" {
			t.Errorf("unexpected OS %s", r.OS)
		}
		if r.ChunkShare != 50 {
			t.Errorf("share = %v, want 50", r.ChunkShare)
		}
	}
}

func TestLoadParadoxOnTinyDataset(t *testing.T) {
	lp := ComputeLoadParadox(tinyDataset())
	if len(lp.Points) != 2 {
		t.Fatalf("points = %d", len(lp.Points))
	}
	// Equal request counts -> correlation undefined (NaN) is acceptable;
	// with 2 servers at 2 requests each, counts are equal.
	for _, p := range lp.Points {
		if p.Requests != 2 {
			t.Errorf("server %d requests = %d", p.ServerID, p.Requests)
		}
	}
}

func TestEmptyDatasetSafety(t *testing.T) {
	d := &core.Dataset{}
	d.Index()
	if st := ComputeDatasetStats(d); st.Sessions != 0 {
		t.Error("empty stats wrong")
	}
	if ls := SplitByLoss(d); ls.NoLossShare != 0 {
		t.Error("empty loss split wrong")
	}
	if mp := ComputeMissPersistence(d); mp.SessionsWithMiss != 0 {
		t.Error("empty persistence wrong")
	}
	if so := DetectStackOutliersDataset(d); so.OutlierChunks != 0 {
		t.Error("empty outliers wrong")
	}
	if sv := CompareServerVsNetwork(d); sv.ServerDominatesShare != 0 {
		t.Error("empty server-vs-network wrong")
	}
	if tp := ComputeTailPrefixes(d, 100, 50); tp.TailPrefixes != 0 {
		t.Error("empty tail wrong")
	}
	if rep := ComputeUnpopularBrowsers(d, 1); len(rep.Rows) != 0 {
		t.Error("empty browsers wrong")
	}
}

func TestPearson(t *testing.T) {
	if !math.IsNaN(pearson(nil, nil)) {
		t.Error("empty pearson should be NaN")
	}
	xs := []float64{1, 2, 3, 4}
	if got := pearson(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("self-correlation = %v", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti-correlation = %v", got)
	}
	if !math.IsNaN(pearson(xs, []float64{5, 5, 5, 5})) {
		t.Error("zero-variance pearson should be NaN")
	}
}
