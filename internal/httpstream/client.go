package httpstream

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"time"

	"vidperf/internal/core"
	"vidperf/internal/player"
)

// PlayResult is one streamed session's client-side view.
type PlayResult struct {
	Chunks       []core.ChunkRecord
	StartupMS    float64
	RebufCount   int
	RebufDurMS   float64
	RebufferRate float64
}

// Player streams chunks from a chunk server over one keep-alive TCP
// connection, measuring the paper's per-chunk milestones.
type Player struct {
	BaseURL string // e.g. "http://127.0.0.1:8639"
	// BitrateKbps selects the chunk size (fixed-rate client; the
	// simulator owns the ABR experiments).
	BitrateKbps int
	// ChunkSec is the seconds of video per chunk (default 6).
	ChunkSec float64
	// StartThresholdSec gates playback start (default 6).
	StartThresholdSec float64

	client *http.Client
}

// NewPlayer builds a player for the given server URL.
func NewPlayer(baseURL string, bitrateKbps int) *Player {
	return &Player{
		BaseURL:     baseURL,
		BitrateKbps: bitrateKbps,
		ChunkSec:    6,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        1,
				MaxIdleConnsPerHost: 1,
				IdleConnTimeout:     60 * time.Second,
			},
		},
	}
}

// Play streams chunks 0..n-1 of videoID, returning per-chunk records and
// the session QoE summary.
func (p *Player) Play(sessionID uint64, videoID, n int) (PlayResult, error) {
	chunkSec := p.ChunkSec
	if chunkSec == 0 {
		chunkSec = 6
	}
	thr := p.StartThresholdSec
	if thr == 0 {
		thr = 6
	}
	pl := player.New(thr)
	res := PlayResult{}
	wallStart := time.Now()

	for idx := 0; idx < n; idx++ {
		rec, err := p.fetchChunk(sessionID, videoID, idx)
		if err != nil {
			return res, fmt.Errorf("httpstream: chunk %d: %w", idx, err)
		}
		rec.DurationSec = chunkSec
		now := float64(time.Since(wallStart).Microseconds()) / 1000
		before := pl.RebufCount()
		beforeMS := pl.RebufDurMS()
		pl.OnChunkDownloaded(now, chunkSec)
		rec.BufCount = pl.RebufCount() - before
		rec.BufDurMS = pl.RebufDurMS() - beforeMS
		res.Chunks = append(res.Chunks, rec)
	}
	pl.Finish()
	res.StartupMS = pl.StartupMS()
	res.RebufCount = pl.RebufCount()
	res.RebufDurMS = pl.RebufDurMS()
	res.RebufferRate = pl.RebufferRate()
	return res, nil
}

// fetchChunk downloads one chunk, measuring D_FB (request to first
// response byte) and D_LB (first byte to last byte) and joining the
// server-side breakdown from the response headers.
func (p *Player) fetchChunk(sessionID uint64, videoID, idx int) (core.ChunkRecord, error) {
	url := fmt.Sprintf("%s/video/%d/chunk/%d?kbps=%d", p.BaseURL, videoID, idx, p.BitrateKbps)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return core.ChunkRecord{}, err
	}

	var sent, firstByte time.Time
	trace := &httptrace.ClientTrace{
		WroteRequest:         func(httptrace.WroteRequestInfo) { sent = time.Now() },
		GotFirstResponseByte: func() { firstByte = time.Now() },
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))

	resp, err := p.client.Do(req)
	if err != nil {
		return core.ChunkRecord{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return core.ChunkRecord{}, fmt.Errorf("status %s", resp.Status)
	}
	nBytes, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return core.ChunkRecord{}, err
	}
	lastByte := time.Now()
	if sent.IsZero() || firstByte.IsZero() {
		return core.ChunkRecord{}, fmt.Errorf("trace callbacks missing")
	}

	rec := core.ChunkRecord{
		SessionID:   sessionID,
		ChunkID:     idx,
		BitrateKbps: p.BitrateKbps,
		SizeBytes:   nBytes,
		DFBms:       float64(firstByte.Sub(sent).Microseconds()) / 1000,
		DLBms:       float64(lastByte.Sub(firstByte).Microseconds()) / 1000,
		Visible:     true,
		CacheHit:    resp.Header.Get(HeaderCacheStatus) == "HIT",
		RetryTimer:  resp.Header.Get(HeaderRetryTimer) == "1",
	}
	rec.DreadMS = headerFloat(resp, HeaderDCDN)
	rec.DBEms = headerFloat(resp, HeaderDBE)
	if rec.CacheHit {
		rec.CacheLevel = "ram"
	} else {
		rec.CacheLevel = "miss"
	}
	return rec, nil
}

func headerFloat(resp *http.Response, name string) float64 {
	v, err := strconv.ParseFloat(resp.Header.Get(name), 64)
	if err != nil {
		return 0
	}
	return v
}
