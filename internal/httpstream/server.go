// Package httpstream is a runnable miniature of the paper's delivery path
// on a real network stack: an ATS-like caching chunk server (net/http,
// LRU RAM cache, emulated open-read-retry timer and backend fetch) and a
// player client that streams chunks over one TCP connection, measures the
// paper's per-chunk milestones (D_FB, D_LB, server-side breakdown via
// response headers), and feeds a playback buffer. It demonstrates that the
// instrumentation methodology — the paper's actual contribution — is
// implementable outside the simulator.
package httpstream

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"vidperf/internal/cache"
)

// Header names carrying the server-side measurements to the client, the
// real-system equivalent of the CDN-side beacon join.
const (
	HeaderCacheStatus = "X-Cache"   // HIT or MISS
	HeaderDCDN        = "X-Dcdn-Ms" // server latency before first byte
	HeaderDBE         = "X-Dbe-Ms"  // backend latency (0 on hits)
	HeaderRetryTimer  = "X-Retry"   // "1" when the open-retry timer fired
)

// ServerConfig tunes the chunk server.
type ServerConfig struct {
	// CacheBytes is the RAM cache capacity (default 64 MiB).
	CacheBytes int64
	// OpenRetryDelay emulates the ATS open-read retry timer applied when
	// the object is not in RAM (default 10 ms).
	OpenRetryDelay time.Duration
	// BackendDelay emulates the origin fetch on a miss (default 80 ms).
	BackendDelay time.Duration
	// ChunkBytes sizes each served chunk when the request does not
	// specify a bitrate (default 256 KiB).
	ChunkBytes int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.OpenRetryDelay == 0 {
		c.OpenRetryDelay = 10 * time.Millisecond
	}
	if c.BackendDelay == 0 {
		c.BackendDelay = 80 * time.Millisecond
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 256 << 10
	}
	return c
}

// Server is the caching chunk server. It implements http.Handler for
// paths of the form /video/{videoID}/chunk/{chunkID}?kbps={bitrate}.
type Server struct {
	cfg ServerConfig

	mu    sync.Mutex
	cache *cache.LRU

	// Metrics.
	Requests int64
	Hits     int64
}

// NewServer builds a chunk server.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	return &Server{cfg: cfg, cache: cache.NewLRU(cfg.CacheBytes)}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	videoID, chunkID, ok := parseChunkPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	size := s.cfg.ChunkBytes
	if kbps := r.URL.Query().Get("kbps"); kbps != "" {
		if v, err := strconv.Atoi(kbps); err == nil && v > 0 {
			size = v * 1000 / 8 * 6 // six seconds of video
		}
	}
	key := chunkKey(videoID, chunkID, size)

	start := time.Now()
	s.mu.Lock()
	s.Requests++
	hit := s.cache.Get(key)
	if hit {
		s.Hits++
	}
	s.mu.Unlock()

	var dbe time.Duration
	retry := false
	if !hit {
		// Open attempt fails; the retry timer fires, then the backend
		// fetch is pipelined into the response.
		retry = true
		time.Sleep(s.cfg.OpenRetryDelay)
		dbe = s.cfg.BackendDelay
		time.Sleep(dbe)
		s.mu.Lock()
		s.cache.Put(key, int64(size))
		s.mu.Unlock()
	}
	dcdn := time.Since(start) - dbe

	w.Header().Set("Content-Type", "video/mp4")
	w.Header().Set("Content-Length", strconv.Itoa(size))
	w.Header().Set(HeaderCacheStatus, cacheStatus(hit))
	w.Header().Set(HeaderDCDN, fmt.Sprintf("%.3f", float64(dcdn.Microseconds())/1000))
	w.Header().Set(HeaderDBE, fmt.Sprintf("%.3f", float64(dbe.Microseconds())/1000))
	if retry {
		w.Header().Set(HeaderRetryTimer, "1")
	}
	w.WriteHeader(http.StatusOK)

	// Stream deterministic payload without allocating the whole chunk.
	buf := make([]byte, 32<<10)
	for i := range buf {
		buf[i] = byte(videoID + chunkID + i)
	}
	remaining := size
	for remaining > 0 {
		n := len(buf)
		if remaining < n {
			n = remaining
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		remaining -= n
	}
}

// HitRatio returns the server's cache hit ratio so far.
func (s *Server) HitRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

func cacheStatus(hit bool) string {
	if hit {
		return "HIT"
	}
	return "MISS"
}

func chunkKey(videoID, chunkID, size int) uint64 {
	return uint64(videoID)<<40 | uint64(uint32(chunkID))<<16 | uint64(size&0xffff)
}

// parseChunkPath extracts /video/{v}/chunk/{c}.
func parseChunkPath(path string) (videoID, chunkID int, ok bool) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) != 4 || parts[0] != "video" || parts[2] != "chunk" {
		return 0, 0, false
	}
	v, err1 := strconv.Atoi(parts[1])
	c, err2 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || v < 0 || c < 0 {
		return 0, 0, false
	}
	return v, c, true
}
