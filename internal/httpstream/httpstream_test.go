package httpstream

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func fastConfig() ServerConfig {
	return ServerConfig{
		CacheBytes:     8 << 20,
		OpenRetryDelay: 2 * time.Millisecond,
		BackendDelay:   15 * time.Millisecond,
		ChunkBytes:     32 << 10,
	}
}

func TestServeMissThenHit(t *testing.T) {
	srv := NewServer(fastConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func() *http.Response {
		resp, err := http.Get(ts.URL + "/video/1/chunk/0?kbps=100")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := get()
	if first.Header.Get(HeaderCacheStatus) != "MISS" {
		t.Errorf("first fetch = %s, want MISS", first.Header.Get(HeaderCacheStatus))
	}
	if first.Header.Get(HeaderRetryTimer) != "1" {
		t.Error("miss should fire the retry timer")
	}
	second := get()
	if second.Header.Get(HeaderCacheStatus) != "HIT" {
		t.Errorf("second fetch = %s, want HIT", second.Header.Get(HeaderCacheStatus))
	}
	if srv.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", srv.HitRatio())
	}
}

func TestServeContentLengthAndPayload(t *testing.T) {
	ts := httptest.NewServer(NewServer(fastConfig()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/video/3/chunk/2?kbps=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := 64 * 1000 / 8 * 6
	if len(body) != want {
		t.Errorf("body = %d bytes, want %d", len(body), want)
	}
}

func TestBadPaths(t *testing.T) {
	ts := httptest.NewServer(NewServer(fastConfig()))
	defer ts.Close()
	for _, path := range []string{"/", "/video/x/chunk/0", "/video/1/segment/0", "/video/1/chunk/-1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestPlayerMeasuresMilestones(t *testing.T) {
	ts := httptest.NewServer(NewServer(fastConfig()))
	defer ts.Close()

	p := NewPlayer(ts.URL, 100)
	res, err := p.Play(1, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 5 {
		t.Fatalf("chunks = %d", len(res.Chunks))
	}
	for i, c := range res.Chunks {
		if c.ChunkID != i {
			t.Fatalf("chunk order broken")
		}
		if c.DFBms <= 0 || c.DLBms < 0 {
			t.Fatalf("chunk %d missing delays: %+v", i, c)
		}
		if c.SizeBytes != 100*1000/8*6 {
			t.Fatalf("chunk %d size %d", i, c.SizeBytes)
		}
	}
	// First fetch misses (backend emulation) and must show a clearly
	// larger D_FB than a later hit.
	if res.Chunks[0].CacheHit {
		t.Error("chunk 0 should miss on a cold server")
	}
	if !res.Chunks[0].RetryTimer {
		t.Error("chunk 0 should record the retry timer")
	}
	if res.Chunks[0].DBEms <= 0 {
		t.Error("chunk 0 missing D_BE")
	}
	// Replay the same video: all hits now, faster first byte.
	res2, err := p.Play(2, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res2.Chunks {
		if !c.CacheHit {
			t.Errorf("replay chunk %d missed", i)
		}
	}
	if res2.Chunks[0].DFBms >= res.Chunks[0].DFBms {
		t.Errorf("hit D_FB %.1f not below miss D_FB %.1f",
			res2.Chunks[0].DFBms, res.Chunks[0].DFBms)
	}
	if res.StartupMS <= 0 {
		t.Error("no startup recorded")
	}
}

func TestEqOneHoldsOnRealStack(t *testing.T) {
	// D_FB must be at least the server-side components (Eq. 1 with
	// rtt0, D_DS >= 0) on a real socket.
	ts := httptest.NewServer(NewServer(fastConfig()))
	defer ts.Close()
	p := NewPlayer(ts.URL, 200)
	res, err := p.Play(3, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chunks {
		if c.DFBms < c.DreadMS+c.DBEms-2 { // 2 ms tolerance for clock skew
			t.Errorf("Eq.1 violated on real stack: DFB=%.2f < server=%.2f",
				c.DFBms, c.DreadMS+c.DBEms)
		}
	}
}
