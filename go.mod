module vidperf

go 1.23
