module vidperf

go 1.24
