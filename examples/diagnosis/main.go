// Diagnosis walk-through: build the paper's two case studies with the
// substrate directly — an early-loss vs late-loss session pair (Fig. 13)
// and a download-stack-buffered chunk (Fig. 17) — then run the §4.3
// detection methods (Eq. 4 outlier screen, Eq. 5 persistent-stack bound)
// on the resulting traces.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"

	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/tcpmodel"
)

func main() {
	path := tcpmodel.Params{
		BaseRTTms: 45, JitterMS: 1,
		BottleneckKbps: 1900, BufferBytes: 96 << 10, RcvWindowBytes: 128 << 10,
	}

	fmt.Println("== Fig. 13: timing of loss matters more than its amount ==")
	base := session.Script{Seed: 13, Path: path, Chunks: 10, BitrateKbps: 1050, ServerLatencyMS: 2}
	early := base
	early.LossProbByChunk = map[int]float64{0: 0.18, 1: 0.18}
	late := base
	late.LossProbByChunk = map[int]float64{5: 0.22}
	report("loss on chunks 0-1", session.RunScripted(early))
	report("loss on chunk 5   ", session.RunScripted(late))

	fmt.Println("\n== Fig. 17: a chunk buffered inside the client download stack ==")
	fastPath := tcpmodel.Params{
		BaseRTTms: 50, JitterMS: 2,
		BottleneckKbps: 20000, BufferBytes: 256 << 10, RcvWindowBytes: 256 << 10,
	}
	ds := session.Script{
		Seed: 2, Path: fastPath, Chunks: 22, BitrateKbps: 1750, ServerLatencyMS: 2,
		TransientAtChunk: map[int]float64{7: 1800},
	}
	recs := session.RunScripted(ds)
	fmt.Printf("chunk  DFB(ms)  DLB(ms)  TPinst(Mbps)  SRTT(ms)\n")
	for _, c := range recs {
		marker := ""
		if c.TruthTransient {
			marker = "   <-- stack-buffered"
		}
		fmt.Printf("%5d  %7.0f  %7.0f  %12.1f  %8.1f%s\n",
			c.ChunkID, c.DFBms, c.DLBms, c.InstantThroughputKbps()/1000, c.SRTTms, marker)
	}
	rep := core.DetectStackOutliers(recs)
	fmt.Printf("\nEq. 4 flags chunks %v — the download stack, not the network, is the\n", rep.Outliers)
	fmt.Println("bottleneck: re-routing this client (the wrong diagnosis without the")
	fmt.Println("end-to-end join) would have wasted CDN resources.")

	fmt.Println("\n== Eq. 5: conservative persistent-stack bound per chunk ==")
	for _, idx := range []int{6, 7, 8} {
		fmt.Printf("chunk %d: estimated D_DS >= %.0f ms (truth %.0f ms)\n",
			idx, core.EstimateDDSms(recs[idx]), recs[idx].TruthDDSms)
	}
}

func report(label string, recs []core.ChunkRecord) {
	lost, sent, rebufs := 0, 0, 0
	for _, c := range recs {
		lost += c.SegsLost
		sent += c.SegsSent
		rebufs += c.BufCount
	}
	fmt.Printf("%s overall loss %.2f%%  rebuffer events %d\n",
		label, 100*float64(lost)/float64(sent), rebufs)
}
