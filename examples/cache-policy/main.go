// Cache-policy study: the §4.1 take-away says ATS's default LRU could be
// replaced with GD-Size or perfect-LFU for popularity-heavy video
// workloads. This example replays one Zipf chunk stream against every
// policy in the library and reports hit ratios and the resulting mean
// server latency (hits from RAM are ~2 ms; misses pay the ~80 ms backend).
//
//	go run ./examples/cache-policy
package main

import (
	"fmt"

	"vidperf/internal/cache"
	"vidperf/internal/catalog"
	"vidperf/internal/stats"
)

func main() {
	policies := []string{"lru", "lfu", "perfect-lfu", "gd-size", "gdsf"}
	const (
		ramBytes = 256 << 20
		requests = 150000
		titles   = 4000
		hitMS    = 2.0
		missMS   = 80.0
	)

	fmt.Printf("replaying %d chunk requests over a %d-title Zipf catalog, %d MiB RAM cache\n\n",
		requests, titles, ramBytes>>20)
	fmt.Printf("%-14s %10s %14s\n", "policy", "hit ratio", "mean lat (ms)")

	for _, name := range policies {
		r := stats.NewRand(99) // identical stream per policy
		zipf := stats.NewZipf(titles, 0.9)
		cat := catalog.New(catalog.Config{NumVideos: titles}, stats.NewRand(1))

		p, _ := cache.NewPolicy(name, ramBytes)
		var st cache.Stats
		for i := 0; i < requests; i++ {
			v := &cat.Videos[zipf.Sample(r)]
			chunk := r.Intn(v.NumChunks)
			key := catalog.ChunkKey(v.ID, chunk, 1050)
			size := catalog.ChunkSizeBytes(1050, cat.ChunkDurationSec(v, chunk))
			if p.Get(key) {
				st.Record(true)
			} else {
				st.Record(false)
				p.Put(key, size)
			}
		}
		mean := st.HitRatio()*hitMS + st.MissRatio()*missMS
		fmt.Printf("%-14s %9.1f%% %14.1f\n", name, 100*st.HitRatio(), mean)
	}
	fmt.Println("\nGD-Size/GDSF and perfect-LFU beat plain LRU on this workload — the")
	fmt.Println("paper's recommendation for popularity-heavy video catalogs.")
}
