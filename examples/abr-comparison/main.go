// ABR comparison: replay the identical workload under different bitrate
// adaptation algorithms and compare QoE — including the §4.3 failure mode
// where an ABR that trusts instantaneous client throughput is poisoned by
// download-stack buffering, and the paper's recommended fixes (screening
// outliers; using the server-side CWND/SRTT signal).
//
//	go run ./examples/abr-comparison
package main

import (
	"fmt"
	"log"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/stats"
	"vidperf/internal/workload"
)

func main() {
	algos := []string{
		"hybrid", "buffer-based", "rate-smoothed",
		"rate-instant", "rate-instant-screened", "server-signal",
		"fixed-low", "fixed-high",
	}
	fmt.Printf("%-24s %10s %12s %12s %10s\n",
		"ABR", "kbps(avg)", "rebuf rate", "startup ms", "drops %")
	for _, name := range algos {
		sc := workload.Scenario{
			Seed:        7, // identical workload for every algorithm
			NumSessions: 1500,
			NumPrefixes: 400,
			Catalog:     catalog.Config{NumVideos: 1500},
			ABRName:     name,
		}
		res, err := session.Execute(sc, session.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ds := res.Dataset
		fmt.Printf("%-24s %10.0f %11.2f%% %12.0f %9.2f%%\n",
			name, meanBitrate(ds), 100*meanRebuf(ds), medianStartup(ds), 100*meanDrops(ds))
	}
	fmt.Println("\nReading the table: rate-instant overshoots after stack-buffered chunks")
	fmt.Println("(higher rebuffering at similar bitrate); screening outliers or using the")
	fmt.Println("server-side signal recovers most of the loss, matching §4.3's take-aways.")
}

func meanBitrate(ds *core.Dataset) float64 {
	var s stats.Summary
	for i := range ds.Sessions {
		s.Add(ds.Sessions[i].AvgBitrateKbps)
	}
	return s.Mean()
}

func meanRebuf(ds *core.Dataset) float64 {
	var s stats.Summary
	for i := range ds.Sessions {
		s.Add(ds.Sessions[i].RebufferRate)
	}
	return s.Mean()
}

func medianStartup(ds *core.Dataset) float64 {
	var xs []float64
	for i := range ds.Sessions {
		if v := ds.Sessions[i].StartupMS; v == v { // skip NaN
			xs = append(xs, v)
		}
	}
	return stats.Median(xs)
}

func meanDrops(ds *core.Dataset) float64 {
	var s stats.Summary
	for i := range ds.Chunks {
		c := &ds.Chunks[i]
		if c.Visible && c.TotalFrames > 0 {
			s.Add(c.DroppedFrac())
		}
	}
	return s.Mean()
}
