// Quickstart: simulate a small measurement campaign, apply the paper's
// preprocessing, and print the headline characterization numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vidperf/internal/analysis"
	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/workload"
)

func main() {
	// 1. Describe the campaign: 3000 sessions against the default CDN
	//    (6 PoPs x 14 ATS-like servers), default client population.
	sc := workload.Scenario{
		Seed:        42,
		NumSessions: 3000,
		NumPrefixes: 500,
		Catalog:     catalog.Config{NumVideos: 2000},
	}

	// 2. Run the end-to-end simulation: every chunk is instrumented at
	//    the player, the CDN application layer, and the server TCP stack.
	res, err := session.Execute(sc, session.Options{})
	if err != nil {
		log.Fatal(err)
	}
	raw := res.Dataset
	fmt.Printf("simulated %v\n", raw)

	// 3. Preprocess exactly like the paper's §3: drop proxy sessions.
	filtered := core.FilterProxies(raw, core.ProxyFilterConfig{})
	fmt.Printf("proxy filter kept %.1f%% of sessions (paper: 77%%)\n\n",
		100*filtered.KeptFraction)
	ds := filtered.Kept

	// 4. Characterize.
	br := analysis.BreakdownCDNLatency(ds)
	fmt.Printf("CDN:     median server latency %.1f ms (hit) vs %.1f ms (miss); retry-timer share %.0f%%\n",
		br.MedianHitMS, br.MedianMissMS, 100*br.RetryTimerChunkShare)

	ld := analysis.ComputeLatencyDistributions(ds)
	fmt.Printf("network: median srtt_min %.1f ms; P(srtt_min > 100 ms) = %.1f%%\n",
		ld.SRTTMin.Quantile(0.5), 100*ld.SRTTMin.CCDFAt(100))

	ls := analysis.SplitByLoss(ds)
	fmt.Printf("loss:    %.0f%% of sessions loss-free; P(rebuf > 1%%) %.2f%% with loss vs %.2f%% without\n",
		100*ls.NoLossShare, 100*ls.RebufLoss.CCDFAt(1), 100*ls.RebufNoLoss.CCDFAt(1))

	ps := analysis.ComputePersistentStack(ds, 50, 3)
	fmt.Printf("client:  %.1f%% of chunks show download-stack latency (Eq. 5); worst platforms:\n",
		100*ps.NonZeroShare)
	for _, row := range ps.Top {
		fmt.Printf("         %-16s mean D_DS %.0f ms (%d chunks)\n",
			row.Browser+"/"+row.OS, row.MeanDDS, row.Chunks)
	}

	rh := analysis.CheckRateHypothesis(ds)
	fmt.Printf("render:  %.1f%% of software-rendered chunks obey the 1.5 sec/sec rule\n",
		100*rh.ConfirmShare)
}
