// Real-network demo: start the miniature caching chunk server on a
// loopback socket, stream two sessions of the same video through it with
// the instrumented HTTP player, and show the paper's core CDN findings —
// miss-vs-hit latency and the retry timer — measured on an actual TCP
// stack rather than the simulator.
//
//	go run ./examples/realnet
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"vidperf/internal/httpstream"
)

func main() {
	srv := httpstream.NewServer(httpstream.ServerConfig{
		CacheBytes:     32 << 20,
		OpenRetryDelay: 10 * time.Millisecond,
		BackendDelay:   80 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	fmt.Printf("chunk server listening at %s\n\n", ts.URL)

	player := httpstream.NewPlayer(ts.URL, 1050)

	fmt.Println("-- session 1: cold cache (every chunk misses to the backend) --")
	play(player, 1)

	fmt.Println("\n-- session 2: same video, warm cache --")
	play(player, 2)

	fmt.Printf("\nserver cache hit ratio: %.0f%%\n", 100*srv.HitRatio())
	fmt.Println("The ~90 ms miss-vs-hit D_FB gap on a real socket is the paper's Fig. 5")
	fmt.Println("mechanism (retry timer + backend fetch), observed with the same")
	fmt.Println("player-side instrumentation the simulator uses.")
}

func play(p *httpstream.Player, session uint64) {
	res, err := p.Play(session, 42, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-6s %-10s %-10s %-8s\n", "chunk", "cache", "DFB ms", "DLB ms", "retry")
	for _, c := range res.Chunks {
		fmt.Printf("%-6d %-6s %-10.2f %-10.2f %-8v\n",
			c.ChunkID, c.CacheLevel, c.DFBms, c.DLBms, c.RetryTimer)
	}
	fmt.Printf("startup: %.1f ms\n", res.StartupMS)
}
