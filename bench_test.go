package vidperf

// bench_test.go regenerates every table and figure in the paper's
// evaluation as a Go benchmark: the first iteration of each bench prints
// the figure's rows/series (paper-reported vs measured) and reports the
// headline value as a custom metric; subsequent iterations time the
// analysis on the shared dataset. Ablation benches at the bottom rerun
// small scenarios under the design alternatives DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. -bench=BenchmarkFig05.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"vidperf/internal/analysis"
	"vidperf/internal/cache"
	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/figures"
	"vidperf/internal/session"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

const benchMaxRank = 3000

// benchScenario is the shared 6000-session campaign; parallelism selects
// how many server-slot shards run concurrently (0 = GOMAXPROCS).
func benchScenario(parallelism int) workload.Scenario {
	return workload.Scenario{
		Seed:              2016,
		NumSessions:       6000,
		NumPrefixes:       900,
		MeanWatchedChunks: 12,
		Catalog:           catalog.Config{NumVideos: benchMaxRank},
		Parallelism:       parallelism,
	}
}

var (
	benchOnce sync.Once
	benchDS   *core.Dataset
)

// benchDataset simulates the shared measurement campaign once.
func benchDataset() *core.Dataset {
	benchOnce.Do(func() {
		res, err := session.Execute(benchScenario(0), session.Options{})
		if err != nil {
			panic(err)
		}
		benchDS = core.FilterProxies(res.Dataset, core.ProxyFilterConfig{}).Kept
	})
	return benchDS
}

var printed sync.Map

// benchFigure runs build b.N times, printing the rendered figure once.
func benchFigure(b *testing.B, id string, build func(ds *core.Dataset) figures.Result) {
	ds := benchDataset()
	b.ResetTimer()
	var res figures.Result
	for i := 0; i < b.N; i++ {
		res = build(ds)
	}
	b.StopTimer()
	if _, dup := printed.LoadOrStore(id, true); !dup {
		fmt.Println(res.Render())
	}
	if !res.Pass {
		b.Fatalf("%s: shape check failed: %s", id, res.Measured)
	}
}

func BenchmarkFig03(b *testing.B) { benchFigure(b, "fig03", figures.Fig03) }
func BenchmarkFig04(b *testing.B) { benchFigure(b, "fig04", figures.Fig04) }
func BenchmarkFig05(b *testing.B) { benchFigure(b, "fig05", figures.Fig05) }
func BenchmarkFig06(b *testing.B) {
	benchFigure(b, "fig06", func(ds *core.Dataset) figures.Result {
		return figures.Fig06(ds, benchMaxRank)
	})
}
func BenchmarkFig07(b *testing.B)  { benchFigure(b, "fig07", figures.Fig07) }
func BenchmarkFig08(b *testing.B)  { benchFigure(b, "fig08", figures.Fig08) }
func BenchmarkFig09(b *testing.B)  { benchFigure(b, "fig09", figures.Fig09) }
func BenchmarkFig10(b *testing.B)  { benchFigure(b, "fig10", figures.Fig10) }
func BenchmarkTable4(b *testing.B) { benchFigure(b, "table4", figures.Table4) }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "fig11", figures.Fig11) }
func BenchmarkFig12(b *testing.B)  { benchFigure(b, "fig12", figures.Fig12) }
func BenchmarkFig13(b *testing.B) {
	benchFigure(b, "fig13", func(*core.Dataset) figures.Result { return figures.Fig13() })
}
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14", figures.Fig14) }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15", figures.Fig15) }
func BenchmarkFig16(b *testing.B) { benchFigure(b, "fig16", figures.Fig16) }
func BenchmarkFig17(b *testing.B) {
	benchFigure(b, "fig17", func(*core.Dataset) figures.Result { return figures.Fig17() })
}
func BenchmarkTable5(b *testing.B) { benchFigure(b, "table5", figures.Table5) }
func BenchmarkFig18(b *testing.B)  { benchFigure(b, "fig18", figures.Fig18) }
func BenchmarkFig19(b *testing.B)  { benchFigure(b, "fig19", figures.Fig19) }
func BenchmarkFig20(b *testing.B) {
	benchFigure(b, "fig20", func(*core.Dataset) figures.Result { return figures.Fig20() })
}
func BenchmarkFig21(b *testing.B)  { benchFigure(b, "fig21", figures.Fig21) }
func BenchmarkFig22(b *testing.B)  { benchFigure(b, "fig22", figures.Fig22) }
func BenchmarkTable1(b *testing.B) { benchFigure(b, "table1", figures.Table1) }

// BenchmarkDatasetStats regenerates the §3 dataset characterization.
func BenchmarkDatasetStats(b *testing.B) {
	ds := benchDataset()
	b.ResetTimer()
	var st analysis.DatasetStats
	for i := 0; i < b.N; i++ {
		st = analysis.ComputeDatasetStats(ds)
	}
	b.StopTimer()
	b.ReportMetric(st.Top10VideoShare, "top10-share")
	b.ReportMetric(st.OverallMissRate, "miss-rate")
	if _, dup := printed.LoadOrStore("datasetstats", true); !dup {
		fmt.Printf("§3 stats: sessions=%d chunks=%d chrome=%.2f firefox=%.2f win=%.2f top10=%.2f miss=%.3f us=%.2f\n\n",
			st.Sessions, st.Chunks, st.BrowserShare["Chrome"], st.BrowserShare["Firefox"],
			st.OSShare["Windows"], st.Top10VideoShare, st.OverallMissRate, st.USClientShare)
	}
}

// BenchmarkSimulation measures the end-to-end simulator itself
// (sessions/op at a small scale).
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := session.Execute(workload.Scenario{
			Seed:        uint64(i + 1),
			NumSessions: 300,
			NumPrefixes: 150,
			Catalog:     catalog.Config{NumVideos: 1000},
		}, session.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Dataset.Chunks) == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkRunParallel measures server-slot-sharded scaling of the full
// 6000-session campaign: p1 is the sequential baseline, the higher
// variants run shards concurrently. The traces are byte-identical across
// variants; only wall-clock changes. Compare with e.g.
//
//	go test -run='^$' -bench=BenchmarkRunParallel -benchtime=1x
func BenchmarkRunParallel(b *testing.B) {
	for _, par := range []int{1, 2, 4, 6} {
		par := par
		b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
			var chunks int
			for i := 0; i < b.N; i++ {
				res, err := session.Execute(benchScenario(par), session.Options{})
				if err != nil {
					b.Fatal(err)
				}
				chunks = len(res.Dataset.Chunks)
				if chunks == 0 {
					b.Fatal("empty run")
				}
			}
			b.ReportMetric(float64(chunks), "chunks")
		})
	}
}

// BenchmarkStreamingRun contrasts the two record paths on the shared
// 6000-session campaign. collect materializes every ChunkRecord and
// SessionRecord and merges them into a Dataset; stream folds each
// finished session into the telemetry sketches and retains only the
// snapshot. Run with -benchmem: B/op drops with streaming (no dataset
// copy/sort/merge), and the live-heap-MB metric — the heap still
// reachable after the run, i.e. what a bigger campaign would scale — is
// the dataset size in collect mode versus the O(sketch) snapshot in
// stream mode, independent of session count.
//
//	go test -run='^$' -bench=BenchmarkStreamingRun -benchtime=1x -benchmem
func BenchmarkStreamingRun(b *testing.B) {
	measure := func(b *testing.B, run func() (any, uint64)) {
		b.ReportAllocs()
		var retained any
		var chunks uint64
		for i := 0; i < b.N; i++ {
			retained, chunks = run()
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "live-heap-MB")
		b.ReportMetric(float64(chunks), "chunks")
		runtime.KeepAlive(retained)
	}
	b.Run("collect", func(b *testing.B) {
		measure(b, func() (any, uint64) {
			res, err := session.Execute(benchScenario(0), session.Options{})
			if err != nil {
				b.Fatal(err)
			}
			return res.Dataset, uint64(len(res.Dataset.Chunks))
		})
	})
	b.Run("stream", func(b *testing.B) {
		measure(b, func() (any, uint64) {
			camp := telemetry.NewCampaign(0)
			if _, err := session.Execute(benchScenario(0), session.Options{Sinks: camp.Sink}); err != nil {
				b.Fatal(err)
			}
			sn := camp.Snapshot()
			return sn, sn.Counter(telemetry.CounterChunks)
		})
	})
}

// BenchmarkStreamingRun1M is the scale proof for the streaming path: a
// one-million-session campaign folded into telemetry sketches, no record
// ever materialized. It is deliberately excluded from the CI bench gate
// (minutes of wall clock); run it by hand when touching the runner's
// memory behaviour:
//
//	go test -run='^$' -bench=BenchmarkStreamingRun1M -benchtime=1x -benchmem
//
// Memory expectation (measured on the reference 1-CPU runner): the
// post-run live heap (live-heap-MB metric) is under 1 MB — just the
// O(sketch) snapshot; the population and every shard's warm caches and
// session states are garbage by then. The OS footprint (sys-MB metric,
// ≈ peak RSS) lands around 650 MB, dominated by GC headroom over the
// run's churn, independent of session count. A collect-mode run at this
// scale would instead retain the full trace — ~8.3M ChunkRecords,
// over 2 GB — before analysis even starts.
func BenchmarkStreamingRun1M(b *testing.B) {
	sc := workload.Scenario{
		Seed:              2016,
		NumSessions:       1_000_000,
		NumPrefixes:       25_000,
		MeanWatchedChunks: 12,
		Catalog:           catalog.Config{NumVideos: benchMaxRank},
	}
	b.ReportAllocs()
	var retained any
	var chunks uint64
	for i := 0; i < b.N; i++ {
		camp := telemetry.NewCampaign(0)
		if _, err := session.Execute(sc, session.Options{Sinks: camp.Sink}); err != nil {
			b.Fatal(err)
		}
		sn := camp.Snapshot()
		retained, chunks = sn, sn.Counter(telemetry.CounterChunks)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "live-heap-MB")
	b.ReportMetric(float64(ms.Sys)/(1<<20), "sys-MB")
	b.ReportMetric(float64(chunks), "chunks")
	runtime.KeepAlive(retained)
}

// --- Ablations (DESIGN.md A1–A6) -----------------------------------------

// BenchmarkAblationCachePolicy compares eviction policies on one Zipf
// chunk stream (§4.1 take-away: GD-Size / perfect-LFU over ATS's LRU).
func BenchmarkAblationCachePolicy(b *testing.B) {
	for _, name := range []string{"lru", "lfu", "perfect-lfu", "gd-size", "gdsf"} {
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				r := stats.NewRand(99)
				z := stats.NewZipf(2000, 0.9)
				p, _ := cache.NewPolicy(name, 256<<20)
				var st cache.Stats
				for j := 0; j < 60000; j++ {
					key := uint64(z.Sample(r))<<8 | uint64(r.Intn(30))
					if p.Get(key) {
						st.Record(true)
					} else {
						st.Record(false)
						p.Put(key, int64(700000+r.Intn(400000)))
					}
				}
				ratio = st.HitRatio()
			}
			b.ReportMetric(ratio, "hit-ratio")
		})
	}
}

// ablationScenario runs a small campaign with a mutated scenario and
// returns the dataset (cached per label).
var (
	ablMu    sync.Mutex
	ablCache = map[string]*core.Dataset{}
)

func ablationRun(label string, mutate func(*workload.Scenario)) *core.Dataset {
	ablMu.Lock()
	defer ablMu.Unlock()
	if ds, ok := ablCache[label]; ok {
		return ds
	}
	sc := workload.Scenario{
		Seed:        77,
		NumSessions: 1200,
		NumPrefixes: 300,
		Catalog:     catalog.Config{NumVideos: 1500},
	}
	if mutate != nil {
		mutate(&sc)
	}
	res, err := session.Execute(sc, session.Options{})
	if err != nil {
		panic(err)
	}
	ds := res.Dataset
	ablCache[label] = ds
	return ds
}

// BenchmarkAblationRetryTimer sweeps the ATS open-read retry timer
// (§4.1 take-away: lower it for disk reads).
func BenchmarkAblationRetryTimer(b *testing.B) {
	for _, ms := range []float64{10, 5, 2} {
		ms := ms
		b.Run(fmt.Sprintf("retry-%.0fms", ms), func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				ds := ablationRun(fmt.Sprintf("retry%.0f", ms), func(sc *workload.Scenario) {
					sc.Fleet.Server.OpenRetryMS = ms
				})
				br := analysis.BreakdownCDNLatency(ds)
				med = br.Dread.Quantile(0.95)
			}
			b.ReportMetric(med, "p95-dread-ms")
		})
	}
}

// BenchmarkAblationPrefetch toggles next-chunk prefetching after a miss
// and first-chunk pinning (§4.1/§4.3 take-aways).
func BenchmarkAblationPrefetch(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*workload.Scenario)
	}{
		{"baseline", nil},
		{"prefetch-2", func(sc *workload.Scenario) { sc.Fleet.Server.Prefetch = 2 }},
		{"pin-first-chunks", func(sc *workload.Scenario) { sc.Fleet.Server.PinFirstChunks = true }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var missGivenMiss float64
			var miss float64
			for i := 0; i < b.N; i++ {
				ds := ablationRun("prefetch-"+v.name, v.mutate)
				mp := analysis.ComputeMissPersistence(ds)
				st := analysis.ComputeDatasetStats(ds)
				missGivenMiss = mp.MeanMissRatioGivenMiss
				miss = st.OverallMissRate
			}
			b.ReportMetric(miss, "miss-rate")
			b.ReportMetric(missGivenMiss, "miss-persistence")
		})
	}
}

// BenchmarkAblationPartitioning spreads the hottest titles across a PoP's
// servers (§4.1 load-balancing take-away) and reports the load imbalance.
func BenchmarkAblationPartitioning(b *testing.B) {
	variants := []struct {
		name string
		top  int
	}{{"cache-focused", 0}, {"partition-top10pct", 150}}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var imbalance float64
			for i := 0; i < b.N; i++ {
				ds := ablationRun("part-"+v.name, func(sc *workload.Scenario) {
					sc.Fleet.PartitionTopRanks = v.top
				})
				lp := analysis.ComputeLoadParadox(ds)
				var reqs []float64
				for _, p := range lp.Points {
					reqs = append(reqs, float64(p.Requests))
				}
				imbalance = stats.Max(reqs) / stats.Mean(reqs)
			}
			b.ReportMetric(imbalance, "max/mean-load")
		})
	}
}

// BenchmarkAblationPacing compares unpaced vs paced slow start on the
// first-chunk burst loss (§4.2 take-away after Trickle).
func BenchmarkAblationPacing(b *testing.B) {
	for _, paced := range []bool{false, true} {
		paced := paced
		name := "unpaced"
		if paced {
			name = "paced"
		}
		b.Run(name, func(b *testing.B) {
			var firstLoss float64
			for i := 0; i < b.N; i++ {
				var s stats.Summary
				p := tcpmodel.Params{
					BaseRTTms: 50, BottleneckKbps: 6000,
					BufferBytes: 64 << 10, Pacing: paced,
				}
				for seed := uint64(0); seed < 200; seed++ {
					c := tcpmodel.New(p, stats.NewRand(seed))
					s.Add(c.Transfer(2000000).LossRate())
				}
				firstLoss = s.Mean()
			}
			b.ReportMetric(firstLoss*100, "chunk0-loss-%")
		})
	}
}

// BenchmarkAblationABRSignal compares throughput estimators under
// download-stack distortion (§4.3 recommendations).
func BenchmarkAblationABRSignal(b *testing.B) {
	for _, abr := range []string{"rate-instant", "rate-instant-screened", "rate-smoothed", "server-signal", "hybrid"} {
		abr := abr
		b.Run(abr, func(b *testing.B) {
			var rebuf float64
			for i := 0; i < b.N; i++ {
				ds := ablationRun("abr-"+abr, func(sc *workload.Scenario) {
					sc.ABRName = abr
				})
				var s stats.Summary
				for j := range ds.Sessions {
					s.Add(ds.Sessions[j].RebufferRate)
				}
				rebuf = s.Mean()
			}
			b.ReportMetric(rebuf*100, "rebuf-%")
		})
	}
}

// BenchmarkAblationColdStart contrasts the steady-state (pre-warmed) CDN
// with a cold fleet, showing why warm caches are the regime the paper
// measures.
func BenchmarkAblationColdStart(b *testing.B) {
	for _, cold := range []bool{false, true} {
		cold := cold
		name := "warm"
		if cold {
			name = "cold"
		}
		b.Run(name, func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				ds := ablationRun("cold-"+name, func(sc *workload.Scenario) {
					sc.ColdStart = cold
				})
				miss = analysis.ComputeDatasetStats(ds).OverallMissRate
			}
			b.ReportMetric(miss*100, "miss-%")
		})
	}
}

// --- Micro-benchmarks on the substrates -----------------------------------

func BenchmarkTCPTransfer(b *testing.B) {
	p := tcpmodel.Params{BaseRTTms: 40, BottleneckKbps: 20000}
	c := tcpmodel.New(p, stats.NewRand(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Transfer(750000)
	}
}

func BenchmarkLRUCache(b *testing.B) {
	p := cache.NewLRU(1 << 30)
	r := stats.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := uint64(r.Intn(100000))
		if !p.Get(key) {
			p.Put(key, 750000)
		}
	}
}

func BenchmarkEq4Detection(b *testing.B) {
	ds := benchDataset()
	groups := ds.ChunksBySession()
	var sessions [][]core.ChunkRecord
	n := 0
	for _, idxs := range groups {
		if n >= 200 {
			break
		}
		chunks := make([]core.ChunkRecord, 0, len(idxs))
		for _, ci := range idxs {
			chunks = append(chunks, ds.Chunks[ci])
		}
		sessions = append(sessions, chunks)
		n++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sessions {
			core.DetectStackOutliers(s)
		}
	}
}
